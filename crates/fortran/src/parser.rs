//! Recursive-descent parser for the supported Fortran subset.
//!
//! Fortran has no reserved words, so statement dispatch is contextual: a
//! statement beginning with `if` is only an if-statement when the token
//! following the matched parenthesis is not `=`. The same lookahead guard
//! protects every keyword-shaped statement head.

use crate::ast::*;
use crate::error::{FortranError, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Statement-oriented parser over the lexed token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ----- token helpers -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        self.tokens
            .get(self.pos + n)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn span(&self) -> Span {
        Span::new(self.line())
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_newline(&mut self) -> Result<()> {
        match self.peek() {
            TokenKind::Newline => {
                self.advance();
                Ok(())
            }
            TokenKind::Eof => Ok(()),
            other => Err(self.err(format!(
                "expected end of statement, found {}",
                other.describe()
            ))),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.advance();
        }
    }

    fn err(&self, message: impl Into<String>) -> FortranError {
        FortranError::parse(self.line(), message.into())
    }

    // ----- program structure ---------------------------------------------

    /// Parse a complete source file.
    pub fn parse_program(mut self) -> Result<Program> {
        let mut program = Program::default();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.at_kw("module") {
                program.modules.push(self.parse_module()?);
            } else if self.at_kw("program") {
                if program.main.is_some() {
                    return Err(self.err("multiple `program` units"));
                }
                program.main = Some(self.parse_main()?);
            } else {
                return Err(self.err(format!(
                    "expected `module` or `program` at top level, found {}",
                    self.peek().describe()
                )));
            }
            self.skip_newlines();
        }
        Ok(program)
    }

    fn parse_module(&mut self) -> Result<Module> {
        let span = self.span();
        self.expect_kw("module")?;
        let name = self.expect_ident()?;
        self.expect_newline()?;
        self.skip_newlines();

        let uses = self.parse_use_block()?;
        self.eat_implicit_none()?;
        let decls = self.parse_decl_block()?;

        let mut procedures = Vec::new();
        if self.eat_kw("contains") {
            self.expect_newline()?;
            self.skip_newlines();
            while self.at_kw("subroutine") || self.at_kw("function") {
                procedures.push(self.parse_procedure()?);
                self.skip_newlines();
            }
        }
        self.parse_end("module", Some(&name))?;
        Ok(Module {
            name,
            uses,
            decls,
            procedures,
            span,
        })
    }

    fn parse_main(&mut self) -> Result<MainProgram> {
        let span = self.span();
        self.expect_kw("program")?;
        let name = self.expect_ident()?;
        self.expect_newline()?;
        self.skip_newlines();

        let uses = self.parse_use_block()?;
        self.eat_implicit_none()?;
        let decls = self.parse_decl_block()?;
        let body = self.parse_stmt_block(&["end", "contains"])?;

        let mut procedures = Vec::new();
        if self.eat_kw("contains") {
            self.expect_newline()?;
            self.skip_newlines();
            while self.at_kw("subroutine") || self.at_kw("function") {
                procedures.push(self.parse_procedure()?);
                self.skip_newlines();
            }
        }
        self.parse_end("program", Some(&name))?;
        Ok(MainProgram {
            name,
            uses,
            decls,
            body,
            procedures,
            span,
        })
    }

    fn parse_procedure(&mut self) -> Result<Procedure> {
        let span = self.span();
        let (kind_kw, is_function) = if self.eat_kw("subroutine") {
            ("subroutine", false)
        } else {
            self.expect_kw("function")?;
            ("function", true)
        };
        let name = self.expect_ident()?;

        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }

        let kind = if is_function {
            let result = if self.eat_kw("result") {
                self.expect(&TokenKind::LParen)?;
                let r = self.expect_ident()?;
                self.expect(&TokenKind::RParen)?;
                r
            } else {
                name.clone()
            };
            ProcKind::Function { result }
        } else {
            ProcKind::Subroutine
        };
        self.expect_newline()?;
        self.skip_newlines();

        let uses = self.parse_use_block()?;
        self.eat_implicit_none()?;
        let decls = self.parse_decl_block()?;
        let body = self.parse_stmt_block(&["end"])?;
        self.parse_end(kind_kw, Some(&name))?;

        Ok(Procedure {
            kind,
            name,
            params,
            uses,
            decls,
            body,
            span,
        })
    }

    /// `end`, `end <kw>`, `end <kw> <name>`, or the fused `end<kw>` form.
    fn parse_end(&mut self, kw: &str, name: Option<&str>) -> Result<()> {
        let fused = format!("end{kw}");
        if self.eat_kw(&fused) {
            // `endmodule m` etc.
            if let TokenKind::Ident(n) = self.peek() {
                let n = n.clone();
                if let Some(expected) = name {
                    if n != expected {
                        return Err(self.err(format!("`end {kw} {n}` does not match `{expected}`")));
                    }
                }
                self.advance();
            }
            return self.expect_newline();
        }
        self.expect_kw("end")?;
        if self.eat_kw(kw) {
            if let TokenKind::Ident(n) = self.peek() {
                let n = n.clone();
                if let Some(expected) = name {
                    if n != expected {
                        return Err(self.err(format!("`end {kw} {n}` does not match `{expected}`")));
                    }
                }
                self.advance();
            }
        }
        self.expect_newline()
    }

    fn parse_use_block(&mut self) -> Result<Vec<UseStmt>> {
        let mut uses = Vec::new();
        while self.at_kw("use") {
            self.advance();
            let module = self.expect_ident()?;
            let only = if self.eat(&TokenKind::Comma) {
                self.expect_kw("only")?;
                self.expect(&TokenKind::Colon)?;
                let mut names = Vec::new();
                loop {
                    names.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                Some(names)
            } else {
                None
            };
            self.expect_newline()?;
            self.skip_newlines();
            uses.push(UseStmt { module, only });
        }
        Ok(uses)
    }

    fn eat_implicit_none(&mut self) -> Result<()> {
        if self.eat_kw("implicit") {
            self.expect_kw("none")?;
            self.expect_newline()?;
            self.skip_newlines();
        }
        Ok(())
    }

    // ----- declarations ---------------------------------------------------

    fn at_type_keyword(&self) -> bool {
        (self.at_kw("real")
            || self.at_kw("integer")
            || self.at_kw("logical")
            || self.at_kw("character")
            || (self.at_kw("double") && self.peek_at(1).is_kw("precision")))
            // Guard: `real = 1.0` would be an assignment to a variable
            // named `real`; none of our sources do this, but be safe.
            && !matches!(self.peek_at(1), TokenKind::Assign)
    }

    fn parse_decl_block(&mut self) -> Result<Vec<Declaration>> {
        let mut decls = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_type_keyword() {
                decls.push(self.parse_declaration()?);
            } else {
                break;
            }
        }
        Ok(decls)
    }

    fn parse_declaration(&mut self) -> Result<Declaration> {
        let span = self.span();
        let type_spec = self.parse_type_spec()?;
        let mut attrs = Vec::new();
        while self.eat(&TokenKind::Comma) {
            attrs.push(self.parse_attr()?);
        }
        self.expect(&TokenKind::ColonColon)?;

        let mut entities = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let dims = if self.eat(&TokenKind::LParen) {
                let d = self.parse_dim_specs()?;
                self.expect(&TokenKind::RParen)?;
                Some(d)
            } else {
                None
            };
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            entities.push(EntityDecl { name, dims, init });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_newline()?;
        Ok(Declaration {
            type_spec,
            attrs,
            entities,
            span,
        })
    }

    fn parse_type_spec(&mut self) -> Result<TypeSpec> {
        if self.eat_kw("double") {
            self.expect_kw("precision")?;
            return Ok(TypeSpec::Real(FpPrecision::Double));
        }
        if self.eat_kw("integer") {
            // Optional `(kind=4)` style spec, ignored: all integers are i64.
            self.skip_kind_paren()?;
            return Ok(TypeSpec::Integer);
        }
        if self.eat_kw("logical") {
            self.skip_kind_paren()?;
            return Ok(TypeSpec::Logical);
        }
        if self.eat_kw("character") {
            if self.eat(&TokenKind::LParen) {
                // `(len=*)`, `(len=N)`, `(N)`, `(*)` — all ignored.
                if self.eat_kw("len") {
                    self.expect(&TokenKind::Assign)?;
                }
                if !self.eat(&TokenKind::Star) {
                    let _ = self.parse_expr()?;
                }
                self.expect(&TokenKind::RParen)?;
            }
            return Ok(TypeSpec::Character);
        }
        self.expect_kw("real")?;
        let mut precision = FpPrecision::Single;
        if self.eat(&TokenKind::LParen) {
            if self.eat_kw("kind") {
                self.expect(&TokenKind::Assign)?;
            }
            let line = self.line();
            match self.advance() {
                TokenKind::IntLit(k) => {
                    precision = FpPrecision::from_kind(k).ok_or_else(|| {
                        FortranError::parse(line, format!("unsupported real kind {k}"))
                    })?;
                }
                other => {
                    return Err(FortranError::parse(
                        line,
                        format!("expected kind number, found {}", other.describe()),
                    ))
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(TypeSpec::Real(precision))
    }

    fn skip_kind_paren(&mut self) -> Result<()> {
        if self.eat(&TokenKind::LParen) {
            if self.eat_kw("kind") {
                self.expect(&TokenKind::Assign)?;
            }
            let _ = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
        }
        Ok(())
    }

    fn parse_attr(&mut self) -> Result<Attr> {
        if self.eat_kw("parameter") {
            return Ok(Attr::Parameter);
        }
        if self.eat_kw("allocatable") {
            return Ok(Attr::Allocatable);
        }
        if self.eat_kw("save") {
            return Ok(Attr::Save);
        }
        if self.eat_kw("intent") {
            self.expect(&TokenKind::LParen)?;
            let intent = if self.eat_kw("inout") {
                Intent::InOut
            } else if self.eat_kw("in") {
                Intent::In
            } else if self.eat_kw("out") {
                Intent::Out
            } else {
                return Err(self.err("expected `in`, `out`, or `inout`"));
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(Attr::Intent(intent));
        }
        if self.eat_kw("dimension") {
            self.expect(&TokenKind::LParen)?;
            let dims = self.parse_dim_specs()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Attr::Dimension(dims));
        }
        Err(self.err(format!(
            "unknown declaration attribute {}",
            self.peek().describe()
        )))
    }

    fn parse_dim_specs(&mut self) -> Result<Vec<DimSpec>> {
        let mut dims = Vec::new();
        loop {
            if self.eat(&TokenKind::Colon) {
                dims.push(DimSpec::Deferred);
            } else {
                let first = self.parse_expr()?;
                if self.eat(&TokenKind::Colon) {
                    let hi = self.parse_expr()?;
                    dims.push(DimSpec::Range(first, hi));
                } else {
                    dims.push(DimSpec::Upper(first));
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(dims)
    }

    // ----- statements -----------------------------------------------------

    /// Parse statements until one of the given (lowercase) terminator
    /// keywords appears at statement start.
    fn parse_stmt_block(&mut self, terminators: &[&str]) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            let at_term = terminators.iter().any(|t| {
                if self.at_kw(t) {
                    // `end` terminates; but `endif`/`enddo` inside blocks are
                    // distinct idents handled by their own parsers.
                    !matches!(self.peek_at(1), TokenKind::Assign)
                } else {
                    false
                }
            });
            if at_term {
                break;
            }
            if self.at_type_keyword() {
                return Err(self.err(
                    "declaration after the first executable statement \
                     (specification part must come first)",
                ));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        // Keyword-shaped statements, each guarded against `kw = ...`
        // assignments by checking the following token.
        if self.at_kw("if")
            && matches!(self.peek_at(1), TokenKind::LParen)
            && !self.paren_then_assign(1)
        {
            return self.parse_if(span);
        }
        if self.at_kw("do") && !matches!(self.peek_at(1), TokenKind::Assign) {
            return self.parse_do(span);
        }
        if self.at_kw("call") && !matches!(self.peek_at(1), TokenKind::Assign) {
            self.advance();
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            self.expect_newline()?;
            return Ok(Stmt::Call { name, args, span });
        }
        if self.at_kw("return") && matches!(self.peek_at(1), TokenKind::Newline | TokenKind::Eof) {
            self.advance();
            self.expect_newline()?;
            return Ok(Stmt::Return { span });
        }
        if self.at_kw("exit") && matches!(self.peek_at(1), TokenKind::Newline | TokenKind::Eof) {
            self.advance();
            self.expect_newline()?;
            return Ok(Stmt::Exit { span });
        }
        if self.at_kw("cycle") && matches!(self.peek_at(1), TokenKind::Newline | TokenKind::Eof) {
            self.advance();
            self.expect_newline()?;
            return Ok(Stmt::Cycle { span });
        }
        if self.at_kw("stop") && !matches!(self.peek_at(1), TokenKind::Assign) {
            self.advance();
            let code = match self.peek() {
                TokenKind::IntLit(v) => {
                    let v = *v;
                    self.advance();
                    Some(v)
                }
                _ => None,
            };
            self.expect_newline()?;
            return Ok(Stmt::Stop { code, span });
        }
        if self.at_kw("allocate") && matches!(self.peek_at(1), TokenKind::LParen) {
            self.advance();
            self.expect(&TokenKind::LParen)?;
            let mut items = Vec::new();
            loop {
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let dims = self.parse_dim_specs()?;
                self.expect(&TokenKind::RParen)?;
                items.push((name, dims));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect_newline()?;
            return Ok(Stmt::Allocate { items, span });
        }
        if self.at_kw("deallocate") && matches!(self.peek_at(1), TokenKind::LParen) {
            self.advance();
            self.expect(&TokenKind::LParen)?;
            let mut names = Vec::new();
            loop {
                names.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect_newline()?;
            return Ok(Stmt::Deallocate { names, span });
        }
        if self.at_kw("print") && matches!(self.peek_at(1), TokenKind::Star) {
            self.advance();
            self.expect(&TokenKind::Star)?;
            let mut items = Vec::new();
            if self.eat(&TokenKind::Comma) {
                loop {
                    items.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_newline()?;
            return Ok(Stmt::Print { items, span });
        }

        // Otherwise: assignment.
        let target = self.parse_lvalue()?;
        self.expect(&TokenKind::Assign)?;
        let value = self.parse_expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    /// From an `(` at offset `start_offset`, scan to the matching `)` and
    /// report whether the next token is `=` (i.e. the head is an indexed
    /// assignment, not a control statement).
    fn paren_then_assign(&self, start_offset: usize) -> bool {
        let mut depth = 0usize;
        let mut i = self.pos + start_offset;
        loop {
            match self.tokens.get(i).map(|t| &t.kind) {
                Some(TokenKind::LParen) => depth += 1,
                Some(TokenKind::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        return matches!(
                            self.tokens.get(i + 1).map(|t| &t.kind),
                            Some(TokenKind::Assign)
                        );
                    }
                }
                Some(TokenKind::Newline) | Some(TokenKind::Eof) | None => return false,
                _ => {}
            }
            i += 1;
        }
    }

    fn parse_lvalue(&mut self) -> Result<LValue> {
        let name = self.expect_ident()?;
        if self.eat(&TokenKind::LParen) {
            let mut indices = Vec::new();
            loop {
                indices.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Ok(LValue::Index { name, indices })
        } else {
            Ok(LValue::Var(name))
        }
    }

    fn parse_if(&mut self, span: Span) -> Result<Stmt> {
        self.expect_kw("if")?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;

        if !self.at_kw("then") {
            // One-line if: `if (cond) stmt`.
            let body = vec![self.parse_stmt()?];
            return Ok(Stmt::If {
                arms: vec![(cond, body)],
                else_body: None,
                span,
            });
        }
        self.expect_kw("then")?;
        self.expect_newline()?;

        let mut arms = Vec::new();
        let mut else_body = None;
        let mut current_cond = cond;
        loop {
            let body = self.parse_stmt_block(&["else", "elseif", "end", "endif"])?;
            arms.push((current_cond, body));
            let is_elseif = if self.eat_kw("elseif") {
                true
            } else if self.at_kw("else") && self.peek_at(1).is_kw("if") {
                self.advance(); // `else`
                self.advance(); // `if`
                true
            } else {
                false
            };
            if is_elseif {
                self.expect(&TokenKind::LParen)?;
                current_cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect_kw("then")?;
                self.expect_newline()?;
                continue;
            }
            if self.eat_kw("else") {
                self.expect_newline()?;
                let body = self.parse_stmt_block(&["end", "endif"])?;
                else_body = Some(body);
            }
            break;
        }
        if self.eat_kw("endif") {
            self.expect_newline()?;
        } else {
            self.expect_kw("end")?;
            self.expect_kw("if")?;
            self.expect_newline()?;
        }
        Ok(Stmt::If {
            arms,
            else_body,
            span,
        })
    }

    fn parse_do(&mut self, span: Span) -> Result<Stmt> {
        self.expect_kw("do")?;
        if self.eat_kw("while") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.expect_newline()?;
            let body = self.parse_stmt_block(&["end", "enddo"])?;
            self.parse_end_do()?;
            return Ok(Stmt::DoWhile { cond, body, span });
        }
        let var = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let start = self.parse_expr()?;
        self.expect(&TokenKind::Comma)?;
        let end = self.parse_expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_newline()?;
        let body = self.parse_stmt_block(&["end", "enddo"])?;
        self.parse_end_do()?;
        Ok(Stmt::Do {
            var,
            start,
            end,
            step,
            body,
            span,
        })
    }

    fn parse_end_do(&mut self) -> Result<()> {
        if self.eat_kw("enddo") {
            return self.expect_newline();
        }
        self.expect_kw("end")?;
        self.expect_kw("do")?;
        self.expect_newline()
    }

    // ----- expressions ----------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let operand = self.parse_not()?;
            return Ok(Expr::un(UnOp::Not, operand));
        }
        self.parse_rel()
    }

    fn parse_rel(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.parse_add()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = if self.eat(&TokenKind::Minus) {
            Expr::un(UnOp::Neg, self.parse_term()?)
        } else if self.eat(&TokenKind::Plus) {
            Expr::un(UnOp::Plus, self.parse_term()?)
        } else {
            self.parse_term()?
        };
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_power()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let base = self.parse_primary()?;
        if self.eat(&TokenKind::StarStar) {
            // `**` is right-associative and permits a signed exponent.
            let exp = if self.eat(&TokenKind::Minus) {
                Expr::un(UnOp::Neg, self.parse_power()?)
            } else if self.eat(&TokenKind::Plus) {
                Expr::un(UnOp::Plus, self.parse_power()?)
            } else {
                self.parse_power()?
            };
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Expr::IntLit(v))
            }
            TokenKind::RealLit { value, precision } => {
                self.advance();
                Ok(Expr::RealLit { value, precision })
            }
            TokenKind::LogicalLit(b) => {
                self.advance();
                Ok(Expr::LogicalLit(b))
            }
            TokenKind::StrLit(s) => {
                self.advance();
                Ok(Expr::StrLit(s))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr::NameRef { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        Parser::new(lex(src).unwrap()).parse_program().unwrap()
    }

    fn parse_err(src: &str) -> FortranError {
        Parser::new(lex(src).unwrap()).parse_program().unwrap_err()
    }

    const SMALL: &str = r#"
module m
  use other, only: helper
  implicit none
  real(kind=8), parameter :: pi = 3.14159d0
  integer :: counter = 0
contains
  subroutine step(x, n)
    real(kind=8), intent(inout) :: x(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      x(i) = x(i) * pi + helper(x(i))
    end do
  end subroutine step

  function helper(v) result(w)
    real(kind=8) :: v, w
    w = v * 0.5d0
  end function helper
end module m
"#;

    #[test]
    fn parses_module_structure() {
        let p = parse(SMALL);
        assert_eq!(p.modules.len(), 1);
        let m = &p.modules[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.uses.len(), 1);
        assert_eq!(m.uses[0].only.as_deref(), Some(&["helper".to_string()][..]));
        assert_eq!(m.decls.len(), 2);
        assert!(m.decls[0].is_parameter());
        assert_eq!(m.procedures.len(), 2);
        assert_eq!(m.procedures[0].params, vec!["x", "n"]);
        assert!(m.procedures[1].is_function());
        assert_eq!(m.procedures[1].result_name(), Some("w"));
    }

    #[test]
    fn parses_main_program() {
        let p = parse("program main\n  integer :: i\n  i = 1\n  call go(i)\nend program main\n");
        let mp = p.main.unwrap();
        assert_eq!(mp.name, "main");
        assert_eq!(mp.body.len(), 2);
    }

    #[test]
    fn function_without_result_uses_own_name() {
        let p = parse("module m\ncontains\nfunction f(x)\n real :: f, x\n f = x\nend function f\nend module m\n");
        assert_eq!(p.modules[0].procedures[0].result_name(), Some("f"));
    }

    #[test]
    fn parses_if_elseif_else() {
        let p = parse(
            "program t\n real :: x\n x = 1.0\n if (x > 0.0) then\n x = 1.0\n else if (x < 0.0) then\n x = 2.0\n else\n x = 3.0\n end if\nend program t\n",
        );
        let body = &p.main.unwrap().body;
        match &body[1] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_oneline_if() {
        let p = parse("program t\n real :: x\n x = 0.0\n if (x > 1.0) x = 1.0\nend program t\n");
        let body = &p.main.unwrap().body;
        match &body[1] {
            Stmt::If {
                arms, else_body, ..
            } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].1.len(), 1);
                assert!(else_body.is_none());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_do_with_step_and_do_while() {
        let p = parse(
            "program t\n integer :: i\n real :: s\n s = 0.0\n do i = 10, 1, -1\n s = s + 1.0\n end do\n do while (s > 0.0)\n s = s - 1.0\n enddo\nend program t\n",
        );
        let body = &p.main.unwrap().body;
        assert!(matches!(&body[1], Stmt::Do { step: Some(_), .. }));
        assert!(matches!(&body[2], Stmt::DoWhile { .. }));
    }

    #[test]
    fn parses_allocate_deallocate() {
        let p = parse(
            "program t\n real, allocatable :: a(:), b(:,:)\n allocate(a(10), b(3,0:4))\n deallocate(a, b)\nend program t\n",
        );
        let body = &p.main.unwrap().body;
        match &body[0] {
            Stmt::Allocate { items, .. } => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].1.len(), 2);
                assert!(matches!(items[1].1[1], DimSpec::Range(..)));
            }
            other => panic!("expected Allocate, got {other:?}"),
        }
        assert!(matches!(&body[1], Stmt::Deallocate { names, .. } if names.len() == 2));
    }

    #[test]
    fn parses_stop_and_print() {
        let p = parse("program t\n print *, 'hello', 42\n stop 3\n stop\nend program t\n");
        let body = &p.main.unwrap().body;
        assert!(matches!(&body[0], Stmt::Print { items, .. } if items.len() == 2));
        assert!(matches!(&body[1], Stmt::Stop { code: Some(3), .. }));
        assert!(matches!(&body[2], Stmt::Stop { code: None, .. }));
    }

    #[test]
    fn power_is_right_associative_with_signed_exponent() {
        let p = parse("program t\n real :: x\n x = 2.0 ** 3 ** 2\n x = 2.0 ** -1\nend program t\n");
        let body = &p.main.unwrap().body;
        match &body[0] {
            Stmt::Assign {
                value:
                    Expr::Bin {
                        op: BinOp::Pow,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Pow, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
        match &body[1] {
            Stmt::Assign {
                value:
                    Expr::Bin {
                        op: BinOp::Pow,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Un { op: UnOp::Neg, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_arithmetic_over_comparison_over_logical() {
        let p = parse(
            "program t\n logical :: q\n q = 1 + 2 * 3 < 4 .and. .not. 5 > 6\nend program t\n",
        );
        let body = &p.main.unwrap().body;
        match &body[0] {
            Stmt::Assign {
                value:
                    Expr::Bin {
                        op: BinOp::And,
                        lhs,
                        rhs,
                    },
                ..
            } => {
                assert!(matches!(**lhs, Expr::Bin { op: BinOp::Lt, .. }));
                assert!(matches!(**rhs, Expr::Un { op: UnOp::Not, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn indexed_assignment_to_if_named_array_is_not_an_if() {
        // No reserved words in Fortran.
        let p = parse("program t\n real :: if(3)\n if(2) = 1.0\nend program t\n");
        let body = &p.main.unwrap().body;
        assert!(
            matches!(&body[0], Stmt::Assign { target: LValue::Index { name, .. }, .. } if name == "if")
        );
    }

    #[test]
    fn call_with_and_without_args() {
        let p = parse("program t\n call a\n call b()\n call c(1, 2.0)\nend program t\n");
        let body = &p.main.unwrap().body;
        assert!(matches!(&body[0], Stmt::Call { args, .. } if args.is_empty()));
        assert!(matches!(&body[1], Stmt::Call { args, .. } if args.is_empty()));
        assert!(matches!(&body[2], Stmt::Call { args, .. } if args.len() == 2));
    }

    #[test]
    fn declaration_after_executable_statement_is_rejected() {
        let e = parse_err("program t\n integer :: i\n i = 1\n real :: x\nend program t\n");
        assert!(e.to_string().contains("specification part"));
    }

    #[test]
    fn mismatched_end_name_is_rejected() {
        let e = parse_err("module m\nend module wrong\n");
        assert!(e.to_string().contains("does not match"));
    }

    #[test]
    fn dimension_attribute_parses() {
        let p = parse("module m\n real(kind=8), dimension(10, 0:5) :: grid\nend module m\n");
        let d = &p.modules[0].decls[0];
        match &d.attrs[0] {
            Attr::Dimension(dims) => assert_eq!(dims.len(), 2),
            other => panic!("expected dimension attr, got {other:?}"),
        }
    }

    #[test]
    fn double_precision_is_real8() {
        let p = parse("module m\n double precision :: x\nend module m\n");
        assert_eq!(
            p.modules[0].decls[0].type_spec,
            TypeSpec::Real(FpPrecision::Double)
        );
    }

    #[test]
    fn deferred_shape_dims() {
        let p = parse("module m\n real(kind=8), allocatable :: a(:,:)\nend module m\n");
        let d = &p.modules[0].decls[0];
        let dims = d.dims_for(&d.entities[0]).unwrap();
        assert_eq!(dims, &[DimSpec::Deferred, DimSpec::Deferred]);
    }

    #[test]
    fn entity_initializer_parses() {
        let p = parse("module m\n real(kind=8) :: x = 1.5d0, y\nend module m\n");
        let d = &p.modules[0].decls[0];
        assert!(d.entities[0].init.is_some());
        assert!(d.entities[1].init.is_none());
    }

    #[test]
    fn elseif_fused_and_split_forms() {
        for form in ["elseif", "else if"] {
            let src = format!(
                "program t\n real :: x\n x = 0.0\n if (x > 1.0) then\n x = 1.0\n {form} (x < 0.0) then\n x = 2.0\n end if\nend program t\n"
            );
            let p = parse(&src);
            match &p.main.unwrap().body[1] {
                Stmt::If { arms, .. } => assert_eq!(arms.len(), 2),
                other => panic!("expected If, got {other:?}"),
            }
        }
    }

    #[test]
    fn top_level_garbage_is_rejected() {
        assert!(matches!(
            parse_err("subroutine s\nend\n"),
            FortranError::Parse { .. }
        ));
    }
}
