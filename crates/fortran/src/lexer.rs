//! Free-form Fortran lexer.
//!
//! Handles `!` comments, `&` line continuations (with optional leading `&`
//! on the continued line), case normalization, dotted operators
//! (`.and.`, `.lt.`, `.true.` ...), and real literals in every spelling the
//! models use: `1.`, `.5`, `1.0`, `1e-3`, `1.5d0`, `2.0_8`, `3.0_4`.

use crate::ast::FpPrecision;
use crate::error::{FortranError, Result};
use crate::token::{Token, TokenKind};

/// Tokenize a complete source file.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while self.pos < self.src.len() {
            self.skip_blanks_and_comments();
            if self.pos >= self.src.len() {
                break;
            }
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.push(TokenKind::Newline);
                    self.pos += 1;
                    self.line += 1;
                }
                b'&' => {
                    // Continuation: swallow to end of line, the newline, and
                    // any leading `&` on the next line.
                    self.pos += 1;
                    self.skip_blanks_and_comments();
                    if self.pos < self.src.len() && self.src[self.pos] == b'\n' {
                        self.pos += 1;
                        self.line += 1;
                        self.skip_blanks_and_comments();
                        if self.pos < self.src.len() && self.src[self.pos] == b'&' {
                            self.pos += 1;
                        }
                    } else if self.pos < self.src.len() {
                        return Err(FortranError::lex(
                            self.line,
                            "`&` must end its line (only a comment may follow)",
                        ));
                    }
                }
                b';' => {
                    // Statement separator behaves like a newline.
                    self.push(TokenKind::Newline);
                    self.pos += 1;
                }
                b'\'' | b'"' => self.string_literal(c)?,
                b'0'..=b'9' => self.number()?,
                b'.' => {
                    // Could be `.and.`-style operator/literal or a real like `.5`.
                    if self.pos + 1 < self.src.len() && self.src[self.pos + 1].is_ascii_digit() {
                        self.number()?;
                    } else {
                        self.dotted()?;
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ => self.operator()?,
            }
        }
        self.push(TokenKind::Newline);
        self.push(TokenKind::Eof);
        Ok(self.tokens)
    }

    fn push(&mut self, kind: TokenKind) {
        // Collapse consecutive newlines.
        if kind == TokenKind::Newline
            && matches!(
                self.tokens.last().map(|t| &t.kind),
                Some(TokenKind::Newline) | None
            )
        {
            return;
        }
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn skip_blanks_and_comments(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'!' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn string_literal(&mut self, quote: u8) -> Result<()> {
        let start_line = self.line;
        self.pos += 1;
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() || self.src[self.pos] == b'\n' {
                return Err(FortranError::lex(start_line, "unterminated string literal"));
            }
            let c = self.src[self.pos];
            if c == quote {
                // Doubled quote is an escaped quote.
                if self.pos + 1 < self.src.len() && self.src[self.pos + 1] == quote {
                    s.push(quote as char);
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
                break;
            }
            s.push(c as char);
            self.pos += 1;
        }
        self.push(TokenKind::StrLit(s));
        Ok(())
    }

    /// Lex a numeric literal starting at `self.pos`.
    fn number(&mut self) -> Result<()> {
        let start = self.pos;
        let mut is_real = false;
        let mut exp_marker: Option<u8> = None;

        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        // Fractional part. Careful: `1.eq.2` — a dot followed by a letter
        // sequence ending in a dot is an operator, not a fraction.
        if self.pos < self.src.len() && self.src[self.pos] == b'.' && !self.dot_is_operator() {
            is_real = true;
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        // Exponent part: e/E (single), d/D (double).
        if self.pos < self.src.len() {
            let c = self.src[self.pos].to_ascii_lowercase();
            if c == b'e' || c == b'd' {
                let mut look = self.pos + 1;
                if look < self.src.len() && (self.src[look] == b'+' || self.src[look] == b'-') {
                    look += 1;
                }
                if look < self.src.len() && self.src[look].is_ascii_digit() {
                    exp_marker = Some(c);
                    is_real = true;
                    self.pos = look;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                }
            }
        }
        // Kind suffix `_4` / `_8`.
        let mut kind_suffix: Option<i64> = None;
        if self.pos + 1 < self.src.len()
            && self.src[self.pos] == b'_'
            && self.src[self.pos + 1].is_ascii_digit()
        {
            self.pos += 1;
            let ks = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[ks..self.pos]).unwrap();
            kind_suffix =
                Some(text.parse().map_err(|_| {
                    FortranError::lex(self.line, format!("bad kind suffix `_{text}`"))
                })?);
        }

        let mut text: String = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_ascii_lowercase();
        if let Some(k) = kind_suffix {
            // Strip the suffix from the numeric text.
            let cut = text.rfind('_').unwrap();
            text.truncate(cut);
            if !is_real {
                // Integer with kind suffix: treat as plain integer.
                let v: i64 = text.parse().map_err(|_| {
                    FortranError::lex(self.line, format!("bad integer literal `{text}`"))
                })?;
                self.push(TokenKind::IntLit(v));
                return Ok(());
            }
            let precision = FpPrecision::from_kind(k).ok_or_else(|| {
                FortranError::lex(self.line, format!("unsupported real kind `{k}`"))
            })?;
            let value: f64 = text
                .replace('d', "e")
                .parse()
                .map_err(|_| FortranError::lex(self.line, format!("bad real literal `{text}`")))?;
            self.push(TokenKind::RealLit { value, precision });
            return Ok(());
        }

        if is_real {
            let precision = if exp_marker == Some(b'd') {
                FpPrecision::Double
            } else {
                // Default real literals are single precision in Fortran.
                FpPrecision::Single
            };
            let value: f64 = text
                .replace('d', "e")
                .parse()
                .map_err(|_| FortranError::lex(self.line, format!("bad real literal `{text}`")))?;
            self.push(TokenKind::RealLit { value, precision });
        } else {
            let v: i64 = text.parse().map_err(|_| {
                FortranError::lex(self.line, format!("bad integer literal `{text}`"))
            })?;
            self.push(TokenKind::IntLit(v));
        }
        Ok(())
    }

    /// At a `.`: decide whether it begins a dotted operator (`.eq.`) rather
    /// than a fractional part. True when letters follow and a closing dot
    /// terminates them.
    fn dot_is_operator(&self) -> bool {
        let mut p = self.pos + 1;
        let mut letters = 0;
        while p < self.src.len() && self.src[p].is_ascii_alphabetic() {
            letters += 1;
            p += 1;
        }
        letters > 0 && p < self.src.len() && self.src[p] == b'.'
    }

    fn dotted(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 1; // consume '.'
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if self.pos >= self.src.len() || self.src[self.pos] != b'.' {
            return Err(FortranError::lex(self.line, "malformed dotted operator"));
        }
        self.pos += 1;
        let word = std::str::from_utf8(&self.src[start + 1..self.pos - 1])
            .unwrap()
            .to_ascii_lowercase();
        let kind = match word.as_str() {
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "true" => TokenKind::LogicalLit(true),
            "false" => TokenKind::LogicalLit(false),
            "eq" => TokenKind::Eq,
            "ne" => TokenKind::Ne,
            "lt" => TokenKind::Lt,
            "le" => TokenKind::Le,
            "gt" => TokenKind::Gt,
            "ge" => TokenKind::Ge,
            other => {
                return Err(FortranError::lex(
                    self.line,
                    format!("unknown dotted operator `.{other}.`"),
                ))
            }
        };
        self.push(kind);
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_ascii_lowercase();
        self.push(TokenKind::Ident(name));
    }

    fn operator(&mut self) -> Result<()> {
        let c = self.src[self.pos];
        let next = self.src.get(self.pos + 1).copied();
        let (kind, len) = match (c, next) {
            (b'*', Some(b'*')) => (TokenKind::StarStar, 2),
            (b':', Some(b':')) => (TokenKind::ColonColon, 2),
            (b'=', Some(b'=')) => (TokenKind::Eq, 2),
            (b'/', Some(b'=')) => (TokenKind::Ne, 2),
            (b'<', Some(b'=')) => (TokenKind::Le, 2),
            (b'>', Some(b'=')) => (TokenKind::Ge, 2),
            (b'(', _) => (TokenKind::LParen, 1),
            (b')', _) => (TokenKind::RParen, 1),
            (b',', _) => (TokenKind::Comma, 1),
            (b':', _) => (TokenKind::Colon, 1),
            (b'%', _) => (TokenKind::Percent, 1),
            (b'=', _) => (TokenKind::Assign, 1),
            (b'+', _) => (TokenKind::Plus, 1),
            (b'-', _) => (TokenKind::Minus, 1),
            (b'*', _) => (TokenKind::Star, 1),
            (b'/', _) => (TokenKind::Slash, 1),
            (b'<', _) => (TokenKind::Lt, 1),
            (b'>', _) => (TokenKind::Gt, 1),
            _ => {
                return Err(FortranError::lex(
                    self.line,
                    format!("unexpected character `{}`", c as char),
                ))
            }
        };
        self.push(kind);
        self.pos += len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !matches!(k, T::Newline | T::Eof))
            .collect()
    }

    #[test]
    fn lexes_identifiers_case_insensitively() {
        assert_eq!(
            kinds("Foo BAR_2"),
            vec![T::Ident("foo".into()), T::Ident("bar_2".into())]
        );
    }

    #[test]
    fn lexes_integer_and_real_literals() {
        assert_eq!(kinds("42"), vec![T::IntLit(42)]);
        assert_eq!(
            kinds("1.5"),
            vec![T::RealLit {
                value: 1.5,
                precision: FpPrecision::Single
            }]
        );
        assert_eq!(
            kinds("1.5d0"),
            vec![T::RealLit {
                value: 1.5,
                precision: FpPrecision::Double
            }]
        );
        assert_eq!(
            kinds("2.5e-3"),
            vec![T::RealLit {
                value: 2.5e-3,
                precision: FpPrecision::Single
            }]
        );
        assert_eq!(
            kinds("1.0_8"),
            vec![T::RealLit {
                value: 1.0,
                precision: FpPrecision::Double
            }]
        );
        assert_eq!(
            kinds("1.0_4"),
            vec![T::RealLit {
                value: 1.0,
                precision: FpPrecision::Single
            }]
        );
        assert_eq!(
            kinds(".5"),
            vec![T::RealLit {
                value: 0.5,
                precision: FpPrecision::Single
            }]
        );
        assert_eq!(
            kinds("3."),
            vec![T::RealLit {
                value: 3.0,
                precision: FpPrecision::Single
            }]
        );
        assert_eq!(
            kinds("1d-4"),
            vec![T::RealLit {
                value: 1e-4,
                precision: FpPrecision::Double
            }]
        );
    }

    #[test]
    fn trailing_dot_before_dotted_operator_stays_integer() {
        // `1.eq.2` must lex as 1 .eq. 2, not 1.0 followed by garbage.
        assert_eq!(kinds("1.eq.2"), vec![T::IntLit(1), T::Eq, T::IntLit(2)]);
        assert_eq!(kinds("if (x .lt. 1.) exit")[3], T::Lt);
    }

    #[test]
    fn lexes_dotted_operators_and_logical_literals() {
        assert_eq!(
            kinds("a .and. .not. b .or. .true."),
            vec![
                T::Ident("a".into()),
                T::And,
                T::Not,
                T::Ident("b".into()),
                T::Or,
                T::LogicalLit(true)
            ]
        );
        assert_eq!(
            kinds(".lt. .LE. .GT. .ge. .EQ. .ne."),
            vec![T::Lt, T::Le, T::Gt, T::Ge, T::Eq, T::Ne]
        );
    }

    #[test]
    fn lexes_symbolic_operators() {
        assert_eq!(
            kinds("a**b == c /= d <= e >= f"),
            vec![
                T::Ident("a".into()),
                T::StarStar,
                T::Ident("b".into()),
                T::Eq,
                T::Ident("c".into()),
                T::Ne,
                T::Ident("d".into()),
                T::Le,
                T::Ident("e".into()),
                T::Ge,
                T::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        let toks = kinds("x = 1 + &\n  2");
        assert_eq!(
            toks,
            vec![
                T::Ident("x".into()),
                T::Assign,
                T::IntLit(1),
                T::Plus,
                T::IntLit(2)
            ]
        );
        // With leading ampersand on the continued line.
        let toks = kinds("x = 1 + &\n  & 2");
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("x = 1 ! set x\n! whole-line comment\ny = 2");
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn newlines_separate_statements() {
        let all: Vec<_> = lex("a\nb\n\n\nc")
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect();
        let newline_count = all.iter().filter(|k| **k == T::Newline).count();
        // Consecutive newlines collapse; leading are dropped.
        assert_eq!(newline_count, 3);
    }

    #[test]
    fn semicolon_acts_as_statement_separator() {
        let all: Vec<_> = lex("a = 1; b = 2")
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert!(all.contains(&T::Newline));
        assert_eq!(all.iter().filter(|k| matches!(k, T::Assign)).count(), 2);
    }

    #[test]
    fn string_literals_with_escaped_quotes() {
        assert_eq!(kinds("'it''s'"), vec![T::StrLit("it's".into())]);
        assert_eq!(kinds("\"ab\""), vec![T::StrLit("ab".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("'abc").is_err());
        assert!(lex("'abc\n'").is_err());
    }

    #[test]
    fn unknown_character_is_an_error() {
        let err = lex("x = @").unwrap_err();
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn unknown_dotted_operator_is_an_error() {
        assert!(lex(".bogus.").is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\nc").unwrap();
        let c = toks.iter().find(|t| t.kind.is_kw("c")).unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn kind_suffix_on_integer_is_plain_integer() {
        assert_eq!(kinds("7_8"), vec![T::IntLit(7)]);
    }
}
