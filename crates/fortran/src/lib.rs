//! # prose-fortran
//!
//! A from-scratch front end for the Fortran-90 subset used by the PROSE
//! precision-tuning pipeline: lexer, recursive-descent parser, typed AST,
//! semantic analysis (scoped symbol tables and an FP-variable inventory that
//! becomes the tuning search space), and an unparser whose output re-parses
//! to the identical AST.
//!
//! The paper relied on the ROSE compiler for Fortran AST access and worked
//! around its partial language support with taint-based program reduction.
//! No mature Fortran parsing crate exists in the Rust ecosystem, so this
//! crate implements the constructs the tuning pipeline actually touches:
//!
//! * free-form source, `!` comments, `&` continuations, case-insensitive
//!   keywords and identifiers;
//! * `module` / `contains`, `use` (with `only:`), `implicit none`;
//! * `subroutine` and `function` (with `result(..)`) definitions;
//! * declarations: `real(kind=4|8)`, `real(4|8)`, `real`, `double precision`,
//!   `integer`, `logical`, `character(len=*)`, with the `parameter`,
//!   `intent(..)`, `allocatable`, `dimension(..)`, and `save` attributes,
//!   explicit- and deferred-shape arrays, and entity initializers;
//! * executable statements: assignment, `if`/`else if`/`else`, counted `do`,
//!   `do while`, `call`, `return`, `exit`, `cycle`, `allocate`/`deallocate`,
//!   `print *`, `stop`;
//! * expressions: the full operator set (`**`, `* /`, `+ -`, comparisons in
//!   both `==` and `.eq.` spellings, `.and. .or. .not.`), literals with kind
//!   suffixes (`1.0`, `1d0`, `2.5e-3_8`), array indexing, and intrinsic or
//!   user function references.
//!
//! # Quickstart
//!
//! ```
//! use prose_fortran::{parse_program, unparse, sema::analyze};
//!
//! let src = r#"
//! module m
//! contains
//!   function square(x) result(y)
//!     real(kind=8) :: x, y
//!     y = x * x
//!   end function square
//! end module m
//! "#;
//! let program = parse_program(src).unwrap();
//! let index = analyze(&program).unwrap();
//! assert_eq!(index.fp_variables().count(), 2); // x and y
//! let text = unparse(&program);
//! let reparsed = prose_fortran::parse_program(&text).unwrap();
//! assert_eq!(program, reparsed);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod perturb;
pub mod precision;
pub mod sema;
pub mod span;
pub mod token;
pub mod unparse;

pub use ast::{Module, Procedure, Program};
pub use error::{FortranError, Result};
pub use perturb::{member_seed, perturb_main, DEFAULT_AMPLITUDE};
pub use precision::PrecisionMap;
pub use sema::{analyze, ProgramIndex};
pub use span::Span;
pub use unparse::unparse;

/// Parse a complete source file (modules plus an optional main program).
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = lexer::lex(source)?;
    parser::Parser::new(tokens).parse_program()
}
