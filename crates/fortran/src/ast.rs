//! The abstract syntax tree for the supported Fortran subset.
//!
//! Design notes:
//!
//! * All identifiers are stored lowercase (Fortran is case-insensitive).
//! * `Expr::NameRef { name, args }` covers both array indexing and function
//!   references — the classic Fortran ambiguity. Consumers disambiguate
//!   through the symbol tables built by [`crate::sema`], or dynamically in
//!   the interpreter.
//! * Equality ignores [`Span`]s (see `span.rs`), so `parse(unparse(p)) == p`
//!   is a meaningful round-trip property.

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// Floating-point precision: the two levels the paper tunes between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FpPrecision {
    /// `real(kind=4)` — 32-bit IEEE single.
    Single,
    /// `real(kind=8)` — 64-bit IEEE double.
    Double,
}

impl FpPrecision {
    /// The Fortran `kind` number (4 or 8).
    pub fn kind(self) -> u8 {
        match self {
            FpPrecision::Single => 4,
            FpPrecision::Double => 8,
        }
    }

    /// Size of one value in bytes.
    pub fn bytes(self) -> usize {
        match self {
            FpPrecision::Single => 4,
            FpPrecision::Double => 8,
        }
    }

    pub fn from_kind(kind: i64) -> Option<Self> {
        match kind {
            4 => Some(FpPrecision::Single),
            8 => Some(FpPrecision::Double),
            _ => None,
        }
    }

    /// The other precision level.
    pub fn flipped(self) -> Self {
        match self {
            FpPrecision::Single => FpPrecision::Double,
            FpPrecision::Double => FpPrecision::Single,
        }
    }
}

/// Declared type of a variable or function result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeSpec {
    Real(FpPrecision),
    Integer,
    Logical,
    Character,
}

impl TypeSpec {
    /// Floating-point precision if this is a real type.
    pub fn fp_precision(self) -> Option<FpPrecision> {
        match self {
            TypeSpec::Real(p) => Some(p),
            _ => None,
        }
    }

    pub fn is_fp(self) -> bool {
        matches!(self, TypeSpec::Real(_))
    }
}

/// Argument intent attribute on dummy arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intent {
    In,
    Out,
    InOut,
}

/// A declaration attribute (the subset the models use).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attr {
    Parameter,
    Intent(Intent),
    Allocatable,
    Save,
    /// `dimension(dims)` applying to every entity in the declaration.
    Dimension(Vec<DimSpec>),
}

/// One dimension of an array specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DimSpec {
    /// `(n)` — explicit upper bound, lower bound 1.
    Upper(Expr),
    /// `(lo:hi)` — explicit bounds.
    Range(Expr, Expr),
    /// `(:)` — deferred/assumed shape (allocatables and dummy arguments).
    Deferred,
}

/// One entity in a declaration statement: `name(dims) = init`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityDecl {
    pub name: String,
    /// Per-entity array spec; `None` means scalar unless a `dimension`
    /// attribute supplies one.
    pub dims: Option<Vec<DimSpec>>,
    pub init: Option<Expr>,
}

/// A type declaration statement, e.g.
/// `real(kind=8), intent(in) :: a(n), b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Declaration {
    pub type_spec: TypeSpec,
    pub attrs: Vec<Attr>,
    pub entities: Vec<EntityDecl>,
    pub span: Span,
}

impl Declaration {
    /// The effective array spec for an entity, considering both the entity's
    /// own spec and any `dimension` attribute.
    pub fn dims_for<'a>(&'a self, entity: &'a EntityDecl) -> Option<&'a [DimSpec]> {
        if let Some(d) = &entity.dims {
            return Some(d);
        }
        self.attrs.iter().find_map(|a| match a {
            Attr::Dimension(d) => Some(d.as_slice()),
            _ => None,
        })
    }

    pub fn is_parameter(&self) -> bool {
        self.attrs.iter().any(|a| matches!(a, Attr::Parameter))
    }

    pub fn intent(&self) -> Option<Intent> {
        self.attrs.iter().find_map(|a| match a {
            Attr::Intent(i) => Some(*i),
            _ => None,
        })
    }

    pub fn is_allocatable(&self) -> bool {
        self.attrs.iter().any(|a| matches!(a, Attr::Allocatable))
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

impl BinOp {
    /// True for operators producing logical results.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for operators producing arithmetic results.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => ".or.",
            BinOp::And => ".and.",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    RealLit {
        value: f64,
        precision: FpPrecision,
    },
    IntLit(i64),
    LogicalLit(bool),
    StrLit(String),
    /// A bare variable reference.
    Var(String),
    /// `name(args)` — array element or function reference; consumers
    /// disambiguate via symbol tables.
    NameRef {
        name: String,
        args: Vec<Expr>,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Un {
        op: UnOp,
        operand: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn un(op: UnOp, operand: Expr) -> Expr {
        Expr::Un {
            op,
            operand: Box::new(operand),
        }
    }

    /// The base variable/procedure name this expression references, if it is
    /// a simple or indexed reference.
    pub fn base_name(&self) -> Option<&str> {
        match self {
            Expr::Var(n) => Some(n),
            Expr::NameRef { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Visit this expression and all sub-expressions, outer-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::NameRef { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Un { operand, .. } => operand.walk(f),
            _ => {}
        }
    }
}

/// The target of an assignment: a scalar variable, a whole array, or an
/// indexed element. Whole-array targets (`a = 0.0`) broadcast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    Var(String),
    Index { name: String, indices: Vec<Expr> },
}

impl LValue {
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index { name, .. } => name,
        }
    }
}

/// Executable statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    Assign {
        target: LValue,
        value: Expr,
        span: Span,
    },
    If {
        /// `(condition, body)` for the `if` and each `else if`.
        arms: Vec<(Expr, Vec<Stmt>)>,
        else_body: Option<Vec<Stmt>>,
        span: Span,
    },
    Do {
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        span: Span,
    },
    DoWhile {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    Return {
        span: Span,
    },
    Exit {
        span: Span,
    },
    Cycle {
        span: Span,
    },
    Allocate {
        items: Vec<(String, Vec<DimSpec>)>,
        span: Span,
    },
    Deallocate {
        names: Vec<String>,
        span: Span,
    },
    Print {
        items: Vec<Expr>,
        span: Span,
    },
    Stop {
        code: Option<i64>,
        span: Span,
    },
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Return { span }
            | Stmt::Exit { span }
            | Stmt::Cycle { span }
            | Stmt::Allocate { span, .. }
            | Stmt::Deallocate { span, .. }
            | Stmt::Print { span, .. }
            | Stmt::Stop { span, .. } => *span,
        }
    }

    /// Visit this statement and all nested statements, outer-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If {
                arms, else_body, ..
            } => {
                for (_, body) in arms {
                    for s in body {
                        s.walk(f);
                    }
                }
                if let Some(body) = else_body {
                    for s in body {
                        s.walk(f);
                    }
                }
            }
            Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Visit every expression appearing directly in this statement (not in
    /// nested statements).
    pub fn for_each_expr<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Stmt::Assign { target, value, .. } => {
                if let LValue::Index { indices, .. } = target {
                    for ix in indices {
                        f(ix);
                    }
                }
                f(value);
            }
            Stmt::If { arms, .. } => {
                for (cond, _) in arms {
                    f(cond);
                }
            }
            Stmt::Do {
                start, end, step, ..
            } => {
                f(start);
                f(end);
                if let Some(s) = step {
                    f(s);
                }
            }
            Stmt::DoWhile { cond, .. } => f(cond),
            Stmt::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Stmt::Allocate { items, .. } => {
                for (_, dims) in items {
                    for d in dims {
                        match d {
                            DimSpec::Upper(e) => f(e),
                            DimSpec::Range(lo, hi) => {
                                f(lo);
                                f(hi);
                            }
                            DimSpec::Deferred => {}
                        }
                    }
                }
            }
            Stmt::Print { items, .. } => {
                for e in items {
                    f(e);
                }
            }
            _ => {}
        }
    }
}

/// `use name` / `use name, only: a, b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseStmt {
    pub module: String,
    pub only: Option<Vec<String>>,
}

/// Subroutine vs function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProcKind {
    Subroutine,
    /// Function with its result variable name (the function name itself when
    /// no `result(..)` clause was given).
    Function {
        result: String,
    },
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    pub kind: ProcKind,
    pub name: String,
    pub params: Vec<String>,
    pub uses: Vec<UseStmt>,
    pub decls: Vec<Declaration>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

impl Procedure {
    pub fn is_function(&self) -> bool {
        matches!(self.kind, ProcKind::Function { .. })
    }

    /// The result variable name for functions.
    pub fn result_name(&self) -> Option<&str> {
        match &self.kind {
            ProcKind::Function { result } => Some(result),
            ProcKind::Subroutine => None,
        }
    }
}

/// A module: `use` statements, module-level declarations, and contained
/// procedures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub uses: Vec<UseStmt>,
    pub decls: Vec<Declaration>,
    pub procedures: Vec<Procedure>,
    pub span: Span,
}

/// The main program unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MainProgram {
    pub name: String,
    pub uses: Vec<UseStmt>,
    pub decls: Vec<Declaration>,
    pub body: Vec<Stmt>,
    pub procedures: Vec<Procedure>,
    pub span: Span,
}

/// A complete source file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    pub modules: Vec<Module>,
    pub main: Option<MainProgram>,
}

impl Program {
    /// Find a module by (lowercase) name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// Iterate over every procedure with its owning scope name
    /// (module name, or the main program's name for contained procedures).
    pub fn all_procedures(&self) -> impl Iterator<Item = (&str, &Procedure)> {
        let in_modules = self
            .modules
            .iter()
            .flat_map(|m| m.procedures.iter().map(move |p| (m.name.as_str(), p)));
        let in_main = self
            .main
            .iter()
            .flat_map(|mp| mp.procedures.iter().map(move |p| (mp.name.as_str(), p)));
        in_modules.chain(in_main)
    }

    /// Total number of statements, counting nested ones.
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            let mut n = 0;
            for s in stmts {
                s.walk(&mut |_| n += 1);
            }
            n
        }
        let mut total = 0;
        for m in &self.modules {
            for p in &m.procedures {
                total += count(&p.body);
            }
        }
        if let Some(mp) = &self.main {
            total += count(&mp.body);
            for p in &mp.procedures {
                total += count(&p.body);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_kind_roundtrip() {
        assert_eq!(FpPrecision::from_kind(4), Some(FpPrecision::Single));
        assert_eq!(FpPrecision::from_kind(8), Some(FpPrecision::Double));
        assert_eq!(FpPrecision::from_kind(16), None);
        assert_eq!(FpPrecision::Single.kind(), 4);
        assert_eq!(FpPrecision::Double.bytes(), 8);
        assert_eq!(FpPrecision::Single.flipped(), FpPrecision::Double);
    }

    #[test]
    fn dims_for_prefers_entity_spec_over_attribute() {
        let decl = Declaration {
            type_spec: TypeSpec::Real(FpPrecision::Double),
            attrs: vec![Attr::Dimension(vec![DimSpec::Upper(Expr::IntLit(10))])],
            entities: vec![
                EntityDecl {
                    name: "a".into(),
                    dims: Some(vec![DimSpec::Deferred]),
                    init: None,
                },
                EntityDecl {
                    name: "b".into(),
                    dims: None,
                    init: None,
                },
            ],
            span: Span::default(),
        };
        assert_eq!(
            decl.dims_for(&decl.entities[0]),
            Some(&[DimSpec::Deferred][..])
        );
        assert!(matches!(
            decl.dims_for(&decl.entities[1]),
            Some([DimSpec::Upper(_)])
        ));
    }

    #[test]
    fn expr_walk_visits_all_nodes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Var("x".into()),
            Expr::NameRef {
                name: "f".into(),
                args: vec![Expr::IntLit(1), Expr::Var("y".into())],
            },
        );
        let mut names = vec![];
        e.walk(&mut |n| {
            if let Some(b) = n.base_name() {
                names.push(b.to_string());
            }
        });
        assert_eq!(names, vec!["x", "f", "y"]);
    }

    #[test]
    fn stmt_walk_visits_nested_statements() {
        let inner = Stmt::Return {
            span: Span::default(),
        };
        let s = Stmt::If {
            arms: vec![(Expr::LogicalLit(true), vec![inner])],
            else_body: Some(vec![Stmt::Exit {
                span: Span::default(),
            }]),
            span: Span::default(),
        };
        let mut n = 0;
        s.walk(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Pow.is_arithmetic());
        assert!(!BinOp::Lt.is_arithmetic());
        assert_eq!(BinOp::Pow.symbol(), "**");
    }
}
