//! Semantic analysis: scoped symbol tables, name resolution, arity and type
//! checks, and the floating-point variable inventory.
//!
//! The FP inventory is the bridge to the tuning pipeline: each non-constant
//! FP variable declaration is one *search atom* (Section III-A of the paper
//! uses FP variable declarations as atoms at two precision levels).

use crate::ast::*;
use crate::error::{FortranError, Result};
use crate::span::Span;
use std::collections::HashMap;

/// A scope's `use` imports: `(module name, optional only-list)`.
pub type ImportList = Vec<(String, Option<Vec<String>>)>;

/// Identifies one scope (module, procedure, or main program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    Module,
    Procedure,
    Main,
}

/// Descriptive information about a scope.
#[derive(Debug, Clone)]
pub struct ScopeInfo {
    pub kind: ScopeKind,
    /// Scope name (module name, procedure name, or program name).
    pub name: String,
    /// Owning module for procedures defined inside one.
    pub module: Option<String>,
}

impl ScopeInfo {
    /// `module::proc` style display path.
    pub fn path(&self) -> String {
        match &self.module {
            Some(m) => format!("{m}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A declared symbol.
#[derive(Debug, Clone)]
pub struct Symbol {
    pub name: String,
    pub ty: TypeSpec,
    /// Array rank; `None` for scalars.
    pub rank: Option<usize>,
    /// Named constant (`parameter` attribute).
    pub is_parameter: bool,
    /// Dummy argument of the owning procedure.
    pub is_dummy: bool,
    pub intent: Option<Intent>,
    pub allocatable: bool,
    /// Scope the symbol was declared in (imports keep their home scope).
    pub scope: ScopeId,
}

impl Symbol {
    pub fn is_array(&self) -> bool {
        self.rank.is_some()
    }

    pub fn fp_precision(&self) -> Option<FpPrecision> {
        self.ty.fp_precision()
    }
}

/// Identifies one FP variable declaration — one search atom.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct FpVarId(pub usize);

/// Inventory entry for an FP variable.
#[derive(Debug, Clone)]
pub struct FpVarInfo {
    pub id: FpVarId,
    pub scope: ScopeId,
    pub name: String,
    /// Declared precision in the original program.
    pub declared: FpPrecision,
    pub rank: Option<usize>,
    pub is_dummy: bool,
    /// Named constants are declared FP but excluded from the default atom set.
    pub is_parameter: bool,
}

/// Information about a procedure definition.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    pub name: String,
    pub scope: ScopeId,
    pub module: Option<String>,
    pub is_function: bool,
    pub result: Option<String>,
    pub params: Vec<String>,
    /// Return type for functions (type of the result variable).
    pub return_type: Option<TypeSpec>,
}

/// Kinds of intrinsic procedures the front end knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrinsicKind {
    Function,
    Subroutine,
}

/// An intrinsic's signature: name, kind, and allowed argument count range.
pub struct Intrinsic {
    pub name: &'static str,
    pub kind: IntrinsicKind,
    pub min_args: usize,
    pub max_args: usize,
}

/// The intrinsic table. Mostly Fortran standard intrinsics, plus the PROSE
/// harness hooks (`prose_record*`) and the miniature MPI collectives that
/// stand in for the models' `MPI_ALLREDUCE` calls.
pub const INTRINSICS: &[Intrinsic] = &[
    Intrinsic {
        name: "abs",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "sqrt",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "exp",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "log",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "log10",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "sin",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "cos",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "tan",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "atan",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "atan2",
        kind: IntrinsicKind::Function,
        min_args: 2,
        max_args: 2,
    },
    Intrinsic {
        name: "tanh",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "max",
        kind: IntrinsicKind::Function,
        min_args: 2,
        max_args: 8,
    },
    Intrinsic {
        name: "min",
        kind: IntrinsicKind::Function,
        min_args: 2,
        max_args: 8,
    },
    Intrinsic {
        name: "mod",
        kind: IntrinsicKind::Function,
        min_args: 2,
        max_args: 2,
    },
    Intrinsic {
        name: "sign",
        kind: IntrinsicKind::Function,
        min_args: 2,
        max_args: 2,
    },
    Intrinsic {
        name: "real",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 2,
    },
    Intrinsic {
        name: "dble",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "sngl",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "int",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "nint",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "floor",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "size",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 2,
    },
    Intrinsic {
        name: "sum",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "maxval",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "minval",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "epsilon",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "huge",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "tiny",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    Intrinsic {
        name: "isnan",
        kind: IntrinsicKind::Function,
        min_args: 1,
        max_args: 1,
    },
    // Harness hooks: record a named scalar/array sample for the correctness
    // metric (the stand-in for the models' NetCDF output path).
    Intrinsic {
        name: "prose_record",
        kind: IntrinsicKind::Subroutine,
        min_args: 2,
        max_args: 2,
    },
    Intrinsic {
        name: "prose_record_array",
        kind: IntrinsicKind::Subroutine,
        min_args: 2,
        max_args: 2,
    },
    // Miniature MPI collectives (identity data movement, fixed latency in
    // the cost model — Section IV-B's `MPI_ALLREDUCE` observation).
    Intrinsic {
        name: "mpi_allreduce_sum",
        kind: IntrinsicKind::Subroutine,
        min_args: 2,
        max_args: 2,
    },
    Intrinsic {
        name: "mpi_allreduce_max",
        kind: IntrinsicKind::Subroutine,
        min_args: 2,
        max_args: 2,
    },
];

/// Look up an intrinsic by (lowercase) name.
pub fn intrinsic(name: &str) -> Option<&'static Intrinsic> {
    INTRINSICS.iter().find(|i| i.name == name)
}

/// The result of semantic analysis: scope table, symbols, procedures, and
/// the FP variable inventory.
#[derive(Debug)]
pub struct ProgramIndex {
    scopes: Vec<ScopeInfo>,
    /// (scope, name) → locally declared symbol.
    symbols: HashMap<(ScopeId, String), Symbol>,
    /// Procedure name → definition info. Procedure names are required to be
    /// globally unique (true of all model sources; checked).
    procedures: HashMap<String, ProcInfo>,
    /// Modules visible to each scope via `use` (transitively flattened name
    /// lists for `only` imports; `None` = import everything).
    imports: HashMap<ScopeId, ImportList>,
    fp_vars: Vec<FpVarInfo>,
    fp_by_key: HashMap<(ScopeId, String), FpVarId>,
    module_scopes: HashMap<String, ScopeId>,
}

impl ProgramIndex {
    pub fn scope_info(&self, id: ScopeId) -> &ScopeInfo {
        &self.scopes[id.0]
    }

    pub fn scope_count(&self) -> usize {
        self.scopes.len()
    }

    /// Find a scope by procedure name.
    pub fn scope_of_procedure(&self, name: &str) -> Option<ScopeId> {
        self.procedures.get(name).map(|p| p.scope)
    }

    pub fn procedure(&self, name: &str) -> Option<&ProcInfo> {
        self.procedures.get(name)
    }

    pub fn procedures(&self) -> impl Iterator<Item = &ProcInfo> {
        self.procedures.values()
    }

    pub fn module_scope(&self, module: &str) -> Option<ScopeId> {
        self.module_scopes.get(module).copied()
    }

    /// Resolve `name` from `scope`: local declaration first, then the
    /// enclosing module's declarations, then `use` imports (both the
    /// procedure's own and the enclosing module's).
    pub fn lookup(&self, scope: ScopeId, name: &str) -> Option<&Symbol> {
        let key = (scope, name.to_string());
        if let Some(s) = self.symbols.get(&key) {
            return Some(s);
        }
        // Enclosing module.
        let info = self.scope_info(scope);
        if let Some(m) = &info.module {
            let mscope = self.module_scope(m)?;
            if let Some(s) = self.symbols.get(&(mscope, name.to_string())) {
                return Some(s);
            }
            if let Some(s) = self.lookup_imported(mscope, name) {
                return Some(s);
            }
        }
        self.lookup_imported(scope, name)
    }

    fn lookup_imported(&self, scope: ScopeId, name: &str) -> Option<&Symbol> {
        let imports = self.imports.get(&scope)?;
        for (module, only) in imports {
            if let Some(list) = only {
                if !list.iter().any(|n| n == name) {
                    continue;
                }
            }
            let mscope = self.module_scope(module)?;
            if let Some(s) = self.symbols.get(&(mscope, name.to_string())) {
                return Some(s);
            }
        }
        None
    }

    /// True if a call to procedure `name` is visible from `scope` (defined
    /// in the same module, imported via `use`, or defined in the main
    /// program's `contains` when `scope` is inside the main program).
    pub fn procedure_visible(&self, scope: ScopeId, name: &str) -> bool {
        let Some(proc_info) = self.procedures.get(name) else {
            return false;
        };
        let info = self.scope_info(scope);
        // Same module (or both in main program).
        let scope_module = match info.kind {
            ScopeKind::Module => Some(info.name.clone()),
            _ => info.module.clone(),
        };
        if proc_info.module == scope_module {
            return true;
        }
        // Visible through imports of the scope or its enclosing module.
        let mut scopes_to_check = vec![scope];
        if let Some(m) = &info.module {
            if let Some(ms) = self.module_scope(m) {
                scopes_to_check.push(ms);
            }
        }
        for s in scopes_to_check {
            if let Some(imports) = self.imports.get(&s) {
                for (module, only) in imports {
                    if Some(module.clone()) == proc_info.module {
                        match only {
                            Some(list) => {
                                if list.iter().any(|n| n == name) {
                                    return true;
                                }
                            }
                            None => return true,
                        }
                    }
                }
            }
        }
        false
    }

    /// All FP variable declarations (including named constants).
    pub fn fp_variables(&self) -> impl Iterator<Item = &FpVarInfo> {
        self.fp_vars.iter()
    }

    pub fn fp_var(&self, id: FpVarId) -> &FpVarInfo {
        &self.fp_vars[id.0]
    }

    pub fn fp_var_count(&self) -> usize {
        self.fp_vars.len()
    }

    /// Find an FP variable by scope and name.
    pub fn fp_var_id(&self, scope: ScopeId, name: &str) -> Option<FpVarId> {
        self.fp_by_key.get(&(scope, name.to_string())).copied()
    }

    /// The default search-atom set: FP variables that are not named
    /// constants (Section III-A: variable declarations as atoms).
    pub fn atoms(&self) -> Vec<FpVarId> {
        self.fp_vars
            .iter()
            .filter(|v| !v.is_parameter)
            .map(|v| v.id)
            .collect()
    }

    /// The atoms declared inside the given scopes (used to restrict the
    /// search to a hotspot's procedures).
    pub fn atoms_in_scopes(&self, scopes: &[ScopeId]) -> Vec<FpVarId> {
        self.fp_vars
            .iter()
            .filter(|v| !v.is_parameter && scopes.contains(&v.scope))
            .map(|v| v.id)
            .collect()
    }

    /// Human-readable `module::proc::name` path for an FP variable.
    pub fn fp_var_path(&self, id: FpVarId) -> String {
        let v = self.fp_var(id);
        format!("{}::{}", self.scope_info(v.scope).path(), v.name)
    }
}

/// Run semantic analysis over a parsed program.
pub fn analyze(program: &Program) -> Result<ProgramIndex> {
    let mut a = Analyzer::default();
    a.collect(program)?;
    a.check(program)?;
    Ok(a.index())
}

#[derive(Default)]
struct Analyzer {
    scopes: Vec<ScopeInfo>,
    symbols: HashMap<(ScopeId, String), Symbol>,
    procedures: HashMap<String, ProcInfo>,
    imports: HashMap<ScopeId, ImportList>,
    fp_vars: Vec<FpVarInfo>,
    fp_by_key: HashMap<(ScopeId, String), FpVarId>,
    module_scopes: HashMap<String, ScopeId>,
}

impl Analyzer {
    fn index(self) -> ProgramIndex {
        ProgramIndex {
            scopes: self.scopes,
            symbols: self.symbols,
            procedures: self.procedures,
            imports: self.imports,
            fp_vars: self.fp_vars,
            fp_by_key: self.fp_by_key,
            module_scopes: self.module_scopes,
        }
    }

    fn new_scope(&mut self, info: ScopeInfo) -> ScopeId {
        let id = ScopeId(self.scopes.len());
        self.scopes.push(info);
        id
    }

    // ---- pass 1: collect scopes, symbols, procedures -------------------

    fn collect(&mut self, program: &Program) -> Result<()> {
        for m in &program.modules {
            if self.module_scopes.contains_key(&m.name) {
                return Err(FortranError::sema(
                    m.span.line,
                    format!("duplicate module `{}`", m.name),
                ));
            }
            let scope = self.new_scope(ScopeInfo {
                kind: ScopeKind::Module,
                name: m.name.clone(),
                module: None,
            });
            self.module_scopes.insert(m.name.clone(), scope);
            self.imports.insert(
                scope,
                m.uses
                    .iter()
                    .map(|u| (u.module.clone(), u.only.clone()))
                    .collect(),
            );
            self.collect_decls(scope, &m.decls, &[])?;
            for p in &m.procedures {
                self.collect_procedure(p, Some(m.name.clone()))?;
            }
        }
        if let Some(mp) = &program.main {
            let scope = self.new_scope(ScopeInfo {
                kind: ScopeKind::Main,
                name: mp.name.clone(),
                module: None,
            });
            self.imports.insert(
                scope,
                mp.uses
                    .iter()
                    .map(|u| (u.module.clone(), u.only.clone()))
                    .collect(),
            );
            self.collect_decls(scope, &mp.decls, &[])?;
            for p in &mp.procedures {
                self.collect_procedure(p, Some(mp.name.clone()))?;
            }
        }
        Ok(())
    }

    fn collect_procedure(&mut self, p: &Procedure, module: Option<String>) -> Result<()> {
        if self.procedures.contains_key(&p.name) {
            return Err(FortranError::sema(
                p.span.line,
                format!(
                    "duplicate procedure `{}` (procedure names must be unique)",
                    p.name
                ),
            ));
        }
        if intrinsic(&p.name).is_some() {
            return Err(FortranError::sema(
                p.span.line,
                format!("procedure `{}` shadows an intrinsic", p.name),
            ));
        }
        let scope = self.new_scope(ScopeInfo {
            kind: ScopeKind::Procedure,
            name: p.name.clone(),
            module: module.clone(),
        });
        self.imports.insert(
            scope,
            p.uses
                .iter()
                .map(|u| (u.module.clone(), u.only.clone()))
                .collect(),
        );
        self.collect_decls(scope, &p.decls, &p.params)?;

        // Every dummy argument must be declared.
        for param in &p.params {
            if !self.symbols.contains_key(&(scope, param.clone())) {
                return Err(FortranError::sema(
                    p.span.line,
                    format!(
                        "dummy argument `{param}` of `{}` has no declaration",
                        p.name
                    ),
                ));
            }
        }
        let (is_function, result) = match &p.kind {
            ProcKind::Function { result } => (true, Some(result.clone())),
            ProcKind::Subroutine => (false, None),
        };
        let return_type = if let Some(r) = &result {
            let sym = self.symbols.get(&(scope, r.clone())).ok_or_else(|| {
                FortranError::sema(
                    p.span.line,
                    format!(
                        "result variable `{r}` of function `{}` has no declaration",
                        p.name
                    ),
                )
            })?;
            Some(sym.ty)
        } else {
            None
        };
        self.procedures.insert(
            p.name.clone(),
            ProcInfo {
                name: p.name.clone(),
                scope,
                module,
                is_function,
                result,
                params: p.params.clone(),
                return_type,
            },
        );
        Ok(())
    }

    fn collect_decls(
        &mut self,
        scope: ScopeId,
        decls: &[Declaration],
        params: &[String],
    ) -> Result<()> {
        for d in decls {
            for e in &d.entities {
                let key = (scope, e.name.clone());
                if self.symbols.contains_key(&key) {
                    return Err(FortranError::sema(
                        d.span.line,
                        format!("duplicate declaration of `{}`", e.name),
                    ));
                }
                let rank = d.dims_for(e).map(|dims| dims.len());
                let is_dummy = params.contains(&e.name);
                let sym = Symbol {
                    name: e.name.clone(),
                    ty: d.type_spec,
                    rank,
                    is_parameter: d.is_parameter(),
                    is_dummy,
                    intent: d.intent(),
                    allocatable: d.is_allocatable(),
                    scope,
                };
                if let TypeSpec::Real(prec) = d.type_spec {
                    let id = FpVarId(self.fp_vars.len());
                    self.fp_vars.push(FpVarInfo {
                        id,
                        scope,
                        name: e.name.clone(),
                        declared: prec,
                        rank,
                        is_dummy,
                        is_parameter: d.is_parameter(),
                    });
                    self.fp_by_key.insert(key.clone(), id);
                }
                self.symbols.insert(key, sym);
            }
        }
        Ok(())
    }

    // ---- pass 2: resolve and check --------------------------------------

    fn check(&self, program: &Program) -> Result<()> {
        // Validate use statements refer to known modules/names.
        for (scope, imports) in &self.imports {
            for (module, only) in imports {
                let Some(mscope) = self.module_scopes.get(module) else {
                    return Err(FortranError::sema(
                        0,
                        format!(
                            "`use {module}` in {} refers to an unknown module",
                            self.scopes[scope.0].path()
                        ),
                    ));
                };
                if let Some(names) = only {
                    for n in names {
                        let has_sym = self.symbols.contains_key(&(*mscope, n.clone()));
                        let has_proc = self
                            .procedures
                            .get(n)
                            .is_some_and(|p| p.module.as_deref() == Some(module));
                        if !has_sym && !has_proc {
                            return Err(FortranError::sema(
                                0,
                                format!("`use {module}, only: {n}`: no such name in `{module}`"),
                            ));
                        }
                    }
                }
            }
        }

        let index_view = IndexView { a: self };
        for m in &program.modules {
            for p in &m.procedures {
                let scope = self.procedures[&p.name].scope;
                let checker = Checker {
                    view: &index_view,
                    scope,
                };
                checker.check_body(&p.body)?;
            }
        }
        if let Some(mp) = &program.main {
            let scope = ScopeId(
                self.scopes
                    .iter()
                    .position(|s| s.kind == ScopeKind::Main)
                    .expect("main scope exists"),
            );
            let checker = Checker {
                view: &index_view,
                scope,
            };
            checker.check_body(&mp.body)?;
            for p in &mp.procedures {
                let pscope = self.procedures[&p.name].scope;
                let checker = Checker {
                    view: &index_view,
                    scope: pscope,
                };
                checker.check_body(&p.body)?;
            }
        }
        Ok(())
    }
}

/// Read-only view over the analyzer used during checking (pass 2 borrows
/// the collected tables immutably).
struct IndexView<'a> {
    a: &'a Analyzer,
}

impl<'a> IndexView<'a> {
    fn lookup(&self, scope: ScopeId, name: &str) -> Option<&Symbol> {
        let key = (scope, name.to_string());
        if let Some(s) = self.a.symbols.get(&key) {
            return Some(s);
        }
        let info = &self.a.scopes[scope.0];
        if let Some(m) = &info.module {
            if let Some(mscope) = self.a.module_scopes.get(m) {
                if let Some(s) = self.a.symbols.get(&(*mscope, name.to_string())) {
                    return Some(s);
                }
                if let Some(s) = self.lookup_imported(*mscope, name) {
                    return Some(s);
                }
            }
        }
        self.lookup_imported(scope, name)
    }

    fn lookup_imported(&self, scope: ScopeId, name: &str) -> Option<&Symbol> {
        for (module, only) in self.a.imports.get(&scope)? {
            if let Some(list) = only {
                if !list.iter().any(|n| n == name) {
                    continue;
                }
            }
            if let Some(mscope) = self.a.module_scopes.get(module) {
                if let Some(s) = self.a.symbols.get(&(*mscope, name.to_string())) {
                    return Some(s);
                }
            }
        }
        None
    }

    fn procedure(&self, name: &str) -> Option<&ProcInfo> {
        self.a.procedures.get(name)
    }
}

struct Checker<'a> {
    view: &'a IndexView<'a>,
    scope: ScopeId,
}

impl<'a> Checker<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> FortranError {
        FortranError::sema(span.line, msg.into())
    }

    fn check_body(&self, body: &[Stmt]) -> Result<()> {
        for s in body {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn check_stmt(&self, stmt: &Stmt) -> Result<()> {
        let span = stmt.span();
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let name = target.name();
                let sym = self.view.lookup(self.scope, name).ok_or_else(|| {
                    self.err(span, format!("assignment to undeclared variable `{name}`"))
                })?;
                if sym.is_parameter {
                    return Err(self.err(span, format!("assignment to named constant `{name}`")));
                }
                if let LValue::Index { indices, .. } = target {
                    match sym.rank {
                        Some(r) if r == indices.len() => {}
                        Some(r) => {
                            return Err(self.err(
                                span,
                                format!(
                                    "`{name}` has rank {r} but is indexed with {} subscripts",
                                    indices.len()
                                ),
                            ))
                        }
                        None => {
                            return Err(self.err(span, format!("`{name}` is scalar but indexed")))
                        }
                    }
                    for ix in indices {
                        self.check_expr(ix, span)?;
                    }
                }
                self.check_expr(value, span)
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms {
                    self.check_expr(cond, span)?;
                    self.check_body(body)?;
                }
                if let Some(body) = else_body {
                    self.check_body(body)?;
                }
                Ok(())
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let sym = self
                    .view
                    .lookup(self.scope, var)
                    .ok_or_else(|| self.err(span, format!("undeclared loop variable `{var}`")))?;
                if sym.ty != TypeSpec::Integer {
                    return Err(self.err(span, format!("loop variable `{var}` must be integer")));
                }
                self.check_expr(start, span)?;
                self.check_expr(end, span)?;
                if let Some(st) = step {
                    self.check_expr(st, span)?;
                }
                self.check_body(body)
            }
            Stmt::DoWhile { cond, body, .. } => {
                self.check_expr(cond, span)?;
                self.check_body(body)
            }
            Stmt::Call { name, args, .. } => {
                for a in args {
                    self.check_expr(a, span)?;
                }
                if let Some(i) = intrinsic(name) {
                    if i.kind != IntrinsicKind::Subroutine {
                        return Err(
                            self.err(span, format!("intrinsic `{name}` is not a subroutine"))
                        );
                    }
                    if args.len() < i.min_args || args.len() > i.max_args {
                        return Err(self.err(
                            span,
                            format!("intrinsic `{name}` called with {} arguments", args.len()),
                        ));
                    }
                    return Ok(());
                }
                let p = self
                    .view
                    .procedure(name)
                    .ok_or_else(|| self.err(span, format!("call to unknown procedure `{name}`")))?;
                if p.is_function {
                    return Err(self.err(span, format!("`{name}` is a function, not a subroutine")));
                }
                if p.params.len() != args.len() {
                    return Err(self.err(
                        span,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            p.params.len(),
                            args.len()
                        ),
                    ));
                }
                Ok(())
            }
            Stmt::Allocate { items, .. } => {
                for (name, dims) in items {
                    let sym = self.view.lookup(self.scope, name).ok_or_else(|| {
                        self.err(span, format!("allocate of undeclared `{name}`"))
                    })?;
                    if !sym.allocatable {
                        return Err(self.err(span, format!("`{name}` is not declared allocatable")));
                    }
                    match sym.rank {
                        Some(r) if r == dims.len() => {}
                        _ => {
                            return Err(
                                self.err(span, format!("allocate rank mismatch for `{name}`"))
                            )
                        }
                    }
                }
                Ok(())
            }
            Stmt::Deallocate { names, .. } => {
                for name in names {
                    let sym = self.view.lookup(self.scope, name).ok_or_else(|| {
                        self.err(span, format!("deallocate of undeclared `{name}`"))
                    })?;
                    if !sym.allocatable {
                        return Err(self.err(span, format!("`{name}` is not declared allocatable")));
                    }
                }
                Ok(())
            }
            Stmt::Print { items, .. } => {
                for e in items {
                    self.check_expr(e, span)?;
                }
                Ok(())
            }
            Stmt::Return { .. } | Stmt::Exit { .. } | Stmt::Cycle { .. } | Stmt::Stop { .. } => {
                Ok(())
            }
        }
    }

    fn check_expr(&self, e: &Expr, span: Span) -> Result<()> {
        match e {
            Expr::Var(name) => {
                if self.view.lookup(self.scope, name).is_none() {
                    return Err(self.err(span, format!("undeclared identifier `{name}`")));
                }
                Ok(())
            }
            Expr::NameRef { name, args } => {
                for a in args {
                    self.check_expr(a, span)?;
                }
                // Array reference?
                if let Some(sym) = self.view.lookup(self.scope, name) {
                    return match sym.rank {
                        Some(r) if r == args.len() => Ok(()),
                        Some(r) => Err(self.err(
                            span,
                            format!(
                                "`{name}` has rank {r} but is indexed with {} subscripts",
                                args.len()
                            ),
                        )),
                        None => Err(self.err(
                            span,
                            format!("`{name}` is a scalar but used with arguments"),
                        )),
                    };
                }
                // Intrinsic function?
                if let Some(i) = intrinsic(name) {
                    if i.kind != IntrinsicKind::Function {
                        return Err(self.err(
                            span,
                            format!("intrinsic subroutine `{name}` used as a function"),
                        ));
                    }
                    if args.len() < i.min_args || args.len() > i.max_args {
                        return Err(self.err(
                            span,
                            format!("intrinsic `{name}` called with {} arguments", args.len()),
                        ));
                    }
                    return Ok(());
                }
                // User function?
                if let Some(p) = self.view.procedure(name) {
                    if !p.is_function {
                        return Err(self.err(
                            span,
                            format!("subroutine `{name}` referenced as a function"),
                        ));
                    }
                    if p.params.len() != args.len() {
                        return Err(self.err(
                            span,
                            format!(
                                "function `{name}` expects {} arguments, got {}",
                                p.params.len(),
                                args.len()
                            ),
                        ));
                    }
                    return Ok(());
                }
                Err(self.err(span, format!("unknown array or function `{name}`")))
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.check_expr(lhs, span)?;
                self.check_expr(rhs, span)
            }
            Expr::Un { operand, .. } => self.check_expr(operand, span),
            Expr::RealLit { .. } | Expr::IntLit(_) | Expr::LogicalLit(_) | Expr::StrLit(_) => {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn index(src: &str) -> ProgramIndex {
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    fn sema_err(src: &str) -> FortranError {
        analyze(&parse_program(src).unwrap()).unwrap_err()
    }

    const TWO_MODULES: &str = r#"
module consts
  real(kind=8), parameter :: pi = 3.14159d0
  real(kind=8) :: scale = 1.0d0
end module consts

module work
  use consts, only: pi, scale
contains
  subroutine step(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    integer :: i
    real(kind=4) :: t
    do i = 1, n
      t = 0.5
      u(i) = u(i) * pi * scale + dble(t)
    end do
  end subroutine step
  function total(u, n) result(acc)
    real(kind=8) :: u(n), acc
    integer :: n, i
    acc = 0.0d0
    do i = 1, n
      acc = acc + u(i)
    end do
  end function total
end module work

program main
  use work, only: step, total
  real(kind=8) :: grid(10), s
  integer :: k
  do k = 1, 10
    grid(k) = 1.0d0
  end do
  call step(grid, 10)
  s = total(grid, 10)
  print *, s
end program main
"#;

    #[test]
    fn builds_scopes_and_symbols() {
        let ix = index(TWO_MODULES);
        assert_eq!(ix.scope_count(), 5); // consts, work, step, total, main
        let step_scope = ix.scope_of_procedure("step").unwrap();
        let u = ix.lookup(step_scope, "u").unwrap();
        assert_eq!(u.rank, Some(1));
        assert!(u.is_dummy);
        assert_eq!(u.intent, Some(Intent::InOut));
        assert_eq!(u.fp_precision(), Some(FpPrecision::Double));
    }

    #[test]
    fn module_level_symbols_visible_from_contained_procedures() {
        let src = r#"
module m
  real(kind=8) :: shared
contains
  subroutine s()
    shared = 1.0d0
  end subroutine s
end module m
"#;
        let ix = index(src);
        let scope = ix.scope_of_procedure("s").unwrap();
        let sym = ix.lookup(scope, "shared").unwrap();
        assert_eq!(ix.scope_info(sym.scope).name, "m");
    }

    #[test]
    fn imported_symbols_resolve_through_use() {
        let ix = index(TWO_MODULES);
        let step_scope = ix.scope_of_procedure("step").unwrap();
        assert!(ix.lookup(step_scope, "pi").is_some());
        assert!(ix.lookup(step_scope, "scale").is_some());
    }

    #[test]
    fn only_list_restricts_imports() {
        let src = r#"
module a
  real(kind=8) :: x = 0.0d0, y = 0.0d0
end module a
module b
  use a, only: x
contains
  subroutine s()
    y = 1.0d0
  end subroutine s
end module b
"#;
        let e = sema_err(src);
        assert!(e.to_string().contains("undeclared"), "{e}");
    }

    #[test]
    fn fp_inventory_counts_all_real_declarations() {
        let ix = index(TWO_MODULES);
        // consts: pi, scale; step: u, t; total: u, acc; main: grid, s.
        assert_eq!(ix.fp_var_count(), 8);
        // atoms exclude the named constant pi.
        assert_eq!(ix.atoms().len(), 7);
    }

    #[test]
    fn atoms_in_scopes_restricts_to_hotspot() {
        let ix = index(TWO_MODULES);
        let step = ix.scope_of_procedure("step").unwrap();
        let atoms = ix.atoms_in_scopes(&[step]);
        assert_eq!(atoms.len(), 2); // u and t
        let names: Vec<_> = atoms.iter().map(|a| ix.fp_var(*a).name.clone()).collect();
        assert!(names.contains(&"u".to_string()));
        assert!(names.contains(&"t".to_string()));
    }

    #[test]
    fn fp_var_path_is_descriptive() {
        let ix = index(TWO_MODULES);
        let step = ix.scope_of_procedure("step").unwrap();
        let t = ix.fp_var_id(step, "t").unwrap();
        assert_eq!(ix.fp_var_path(t), "work::step::t");
    }

    #[test]
    fn procedure_visibility_through_use() {
        let ix = index(TWO_MODULES);
        let main_scope = ScopeId(
            (0..ix.scope_count())
                .find(|i| ix.scope_info(ScopeId(*i)).kind == ScopeKind::Main)
                .unwrap(),
        );
        assert!(ix.procedure_visible(main_scope, "step"));
        assert!(ix.procedure_visible(main_scope, "total"));
        let step_scope = ix.scope_of_procedure("step").unwrap();
        // `total` is in the same module as `step`.
        assert!(ix.procedure_visible(step_scope, "total"));
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = sema_err("program t\n integer :: i\n i = j\nend program t\n");
        assert!(e.to_string().contains("undeclared identifier `j`"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = sema_err("program t\n integer :: i\n real(kind=8) :: i\nend program t\n");
        assert!(e.to_string().contains("duplicate declaration"));
    }

    #[test]
    fn rejects_assignment_to_parameter() {
        let e = sema_err(
            "program t\n real(kind=8), parameter :: c = 1.0d0\n c = 2.0d0\nend program t\n",
        );
        assert!(e.to_string().contains("named constant"));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e = sema_err("program t\n real(kind=8) :: a(3,3)\n a(1) = 0.0d0\nend program t\n");
        assert!(e.to_string().contains("rank 2"));
    }

    #[test]
    fn rejects_indexing_a_scalar() {
        let e = sema_err("program t\n real(kind=8) :: x\n x(1) = 0.0d0\nend program t\n");
        assert!(e.to_string().contains("scalar"));
    }

    #[test]
    fn rejects_unknown_call_and_bad_arity() {
        let e = sema_err("program t\n call nothing(1)\nend program t\n");
        assert!(e.to_string().contains("unknown procedure"));
        let e = sema_err(
            "module m\ncontains\n subroutine f(a)\n integer :: a\n a = 0\n end subroutine f\nend module m\nprogram t\n use m\n call f(1, 2)\nend program t\n",
        );
        assert!(e.to_string().contains("expects 1 arguments"));
    }

    #[test]
    fn rejects_calling_function_as_subroutine() {
        let e = sema_err(
            "module m\ncontains\n function f() result(r)\n real(kind=8) :: r\n r = 1.0d0\n end function f\nend module m\nprogram t\n use m\n call f()\nend program t\n",
        );
        assert!(e.to_string().contains("is a function"));
    }

    #[test]
    fn rejects_nonallocatable_allocate() {
        let e = sema_err("program t\n real(kind=8) :: a(10)\n allocate(a(10))\nend program t\n");
        assert!(e.to_string().contains("not declared allocatable"));
    }

    #[test]
    fn rejects_noninteger_loop_variable() {
        let e = sema_err(
            "program t\n real(kind=8) :: x\n integer :: n\n n = 2\n do x = 1, n\n end do\nend program t\n",
        );
        assert!(e.to_string().contains("must be integer"));
    }

    #[test]
    fn rejects_duplicate_procedure_names() {
        let e = sema_err(
            "module a\ncontains\n subroutine f()\n end subroutine f\nend module a\nmodule b\ncontains\n subroutine f()\n end subroutine f\nend module b\n",
        );
        assert!(e.to_string().contains("duplicate procedure"));
    }

    #[test]
    fn rejects_use_of_unknown_module_or_name() {
        let e = sema_err("program t\n use nosuch\nend program t\n");
        assert!(e.to_string().contains("unknown module"));
        let e = sema_err(
            "module m\n integer :: x\nend module m\nprogram t\n use m, only: nope\nend program t\n",
        );
        assert!(e.to_string().contains("no such name"));
    }

    #[test]
    fn rejects_missing_dummy_declaration() {
        let e = sema_err("module m\ncontains\n subroutine f(a)\n end subroutine f\nend module m\n");
        assert!(e.to_string().contains("no declaration"));
    }

    #[test]
    fn intrinsics_pass_checks() {
        index(
            "program t\n real(kind=8) :: x, y(4)\n integer :: i\n do i = 1, 4\n y(i) = 1.0d0\n end do\n x = sqrt(abs(sum(y))) + max(1.0d0, 2.0d0)\n call prose_record('x', x)\n call mpi_allreduce_sum(x, x)\nend program t\n",
        );
    }

    #[test]
    fn rejects_intrinsic_arity_violation() {
        let e = sema_err("program t\n real(kind=8) :: x\n x = sqrt(1.0d0, 2.0d0)\nend program t\n");
        assert!(e.to_string().contains("arguments"));
    }

    #[test]
    fn rejects_procedure_shadowing_intrinsic() {
        let e = sema_err(
            "module m\ncontains\n function sqrt(x) result(r)\n real(kind=8) :: x, r\n r = x\n end function sqrt\nend module m\n",
        );
        assert!(e.to_string().contains("shadows an intrinsic"));
    }
}
