//! AST → Fortran source text.
//!
//! The central contract is the round trip: `parse(unparse(p)) == p` for any
//! well-formed program, which the transformation pipeline relies on when it
//! unparses a mixed-precision variant and feeds it back through the front
//! end (mirroring the paper's unparse-and-reinsert step around ROSE).

use crate::ast::*;
use std::fmt::Write;

/// Render a complete program as free-form Fortran source.
pub fn unparse(program: &Program) -> String {
    let mut w = Writer::new();
    for m in &program.modules {
        w.module(m);
        w.blank();
    }
    if let Some(mp) = &program.main {
        w.main(mp);
    }
    w.out
}

/// Render a single expression (used by diagnostics and diffs).
pub fn unparse_expr(e: &Expr) -> String {
    let mut s = String::new();
    Writer::expr_into(&mut s, e, 0);
    s
}

/// Render a single statement at the given indent depth.
pub fn unparse_stmt(s: &Stmt, depth: usize) -> String {
    let mut w = Writer::new();
    w.depth = depth;
    w.stmt(s);
    w.out
}

/// Render a declaration statement (no trailing newline).
pub fn unparse_decl(d: &Declaration) -> String {
    let mut w = Writer::new();
    w.decl(d);
    w.out.trim_end().to_string()
}

struct Writer {
    out: String,
    depth: usize,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::new(),
            depth: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn module(&mut self, m: &Module) {
        self.line(&format!("module {}", m.name));
        self.depth += 1;
        for u in &m.uses {
            self.use_stmt(u);
        }
        self.line("implicit none");
        for d in &m.decls {
            self.decl(d);
        }
        self.depth -= 1;
        if !m.procedures.is_empty() {
            self.line("contains");
            self.depth += 1;
            for (i, p) in m.procedures.iter().enumerate() {
                if i > 0 {
                    self.blank();
                }
                self.procedure(p);
            }
            self.depth -= 1;
        }
        self.line(&format!("end module {}", m.name));
    }

    fn main(&mut self, mp: &MainProgram) {
        self.line(&format!("program {}", mp.name));
        self.depth += 1;
        for u in &mp.uses {
            self.use_stmt(u);
        }
        self.line("implicit none");
        for d in &mp.decls {
            self.decl(d);
        }
        for s in &mp.body {
            self.stmt(s);
        }
        self.depth -= 1;
        if !mp.procedures.is_empty() {
            self.line("contains");
            self.depth += 1;
            for p in &mp.procedures {
                self.procedure(p);
                self.blank();
            }
            self.depth -= 1;
        }
        self.line(&format!("end program {}", mp.name));
    }

    fn use_stmt(&mut self, u: &UseStmt) {
        match &u.only {
            Some(names) => self.line(&format!("use {}, only: {}", u.module, names.join(", "))),
            None => self.line(&format!("use {}", u.module)),
        }
    }

    fn procedure(&mut self, p: &Procedure) {
        let params = p.params.join(", ");
        let head = match &p.kind {
            ProcKind::Subroutine => format!("subroutine {}({})", p.name, params),
            ProcKind::Function { result } if result == &p.name => {
                format!("function {}({})", p.name, params)
            }
            ProcKind::Function { result } => {
                format!("function {}({}) result({})", p.name, params, result)
            }
        };
        self.line(&head);
        self.depth += 1;
        for u in &p.uses {
            self.use_stmt(u);
        }
        self.line("implicit none");
        for d in &p.decls {
            self.decl(d);
        }
        for s in &p.body {
            self.stmt(s);
        }
        self.depth -= 1;
        let tail = match p.kind {
            ProcKind::Subroutine => format!("end subroutine {}", p.name),
            ProcKind::Function { .. } => format!("end function {}", p.name),
        };
        self.line(&tail);
    }

    fn decl(&mut self, d: &Declaration) {
        let mut s = match d.type_spec {
            TypeSpec::Real(p) => format!("real(kind={})", p.kind()),
            TypeSpec::Integer => "integer".to_string(),
            TypeSpec::Logical => "logical".to_string(),
            TypeSpec::Character => "character(len=*)".to_string(),
        };
        for a in &d.attrs {
            s.push_str(", ");
            match a {
                Attr::Parameter => s.push_str("parameter"),
                Attr::Allocatable => s.push_str("allocatable"),
                Attr::Save => s.push_str("save"),
                Attr::Intent(Intent::In) => s.push_str("intent(in)"),
                Attr::Intent(Intent::Out) => s.push_str("intent(out)"),
                Attr::Intent(Intent::InOut) => s.push_str("intent(inout)"),
                Attr::Dimension(dims) => {
                    s.push_str("dimension(");
                    Self::dims_into(&mut s, dims);
                    s.push(')');
                }
            }
        }
        s.push_str(" :: ");
        for (i, e) in d.entities.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&e.name);
            if let Some(dims) = &e.dims {
                s.push('(');
                Self::dims_into(&mut s, dims);
                s.push(')');
            }
            if let Some(init) = &e.init {
                s.push_str(" = ");
                Self::expr_into(&mut s, init, 0);
            }
        }
        self.line(&s);
    }

    fn dims_into(s: &mut String, dims: &[DimSpec]) {
        for (i, d) in dims.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match d {
                DimSpec::Upper(e) => Self::expr_into(s, e, 0),
                DimSpec::Range(lo, hi) => {
                    Self::expr_into(s, lo, 0);
                    s.push(':');
                    Self::expr_into(s, hi, 0);
                }
                DimSpec::Deferred => s.push(':'),
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let mut s = String::new();
                Self::lvalue_into(&mut s, target);
                s.push_str(" = ");
                Self::expr_into(&mut s, value, 0);
                self.line(&s);
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (i, (cond, body)) in arms.iter().enumerate() {
                    let mut s = String::new();
                    s.push_str(if i == 0 { "if (" } else { "else if (" });
                    Self::expr_into(&mut s, cond, 0);
                    s.push_str(") then");
                    self.line(&s);
                    self.depth += 1;
                    for b in body {
                        self.stmt(b);
                    }
                    self.depth -= 1;
                }
                if let Some(body) = else_body {
                    self.line("else");
                    self.depth += 1;
                    for b in body {
                        self.stmt(b);
                    }
                    self.depth -= 1;
                }
                self.line("end if");
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let mut s = format!("do {var} = ");
                Self::expr_into(&mut s, start, 0);
                s.push_str(", ");
                Self::expr_into(&mut s, end, 0);
                if let Some(st) = step {
                    s.push_str(", ");
                    Self::expr_into(&mut s, st, 0);
                }
                self.line(&s);
                self.depth += 1;
                for b in body {
                    self.stmt(b);
                }
                self.depth -= 1;
                self.line("end do");
            }
            Stmt::DoWhile { cond, body, .. } => {
                let mut s = String::from("do while (");
                Self::expr_into(&mut s, cond, 0);
                s.push(')');
                self.line(&s);
                self.depth += 1;
                for b in body {
                    self.stmt(b);
                }
                self.depth -= 1;
                self.line("end do");
            }
            Stmt::Call { name, args, .. } => {
                let mut s = format!("call {name}");
                if !args.is_empty() {
                    s.push('(');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        Self::expr_into(&mut s, a, 0);
                    }
                    s.push(')');
                }
                self.line(&s);
            }
            Stmt::Return { .. } => self.line("return"),
            Stmt::Exit { .. } => self.line("exit"),
            Stmt::Cycle { .. } => self.line("cycle"),
            Stmt::Allocate { items, .. } => {
                let mut s = String::from("allocate(");
                for (i, (name, dims)) in items.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(name);
                    s.push('(');
                    Self::dims_into(&mut s, dims);
                    s.push(')');
                }
                s.push(')');
                self.line(&s);
            }
            Stmt::Deallocate { names, .. } => {
                self.line(&format!("deallocate({})", names.join(", ")));
            }
            Stmt::Print { items, .. } => {
                if items.is_empty() {
                    self.line("print *");
                } else {
                    let mut s = String::from("print *, ");
                    for (i, e) in items.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        Self::expr_into(&mut s, e, 0);
                    }
                    self.line(&s);
                }
            }
            Stmt::Stop { code, .. } => match code {
                Some(c) => self.line(&format!("stop {c}")),
                None => self.line("stop"),
            },
        }
    }

    fn lvalue_into(s: &mut String, lv: &LValue) {
        match lv {
            LValue::Var(n) => s.push_str(n),
            LValue::Index { name, indices } => {
                s.push_str(name);
                s.push('(');
                for (i, ix) in indices.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    Self::expr_into(s, ix, 0);
                }
                s.push(')');
            }
        }
    }

    /// Precedence levels for parenthesization. Higher binds tighter.
    fn prec(op: BinOp) -> u8 {
        match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
            BinOp::Pow => 8,
        }
    }

    fn expr_into(s: &mut String, e: &Expr, parent_prec: u8) {
        match e {
            Expr::RealLit { value, precision } => {
                Self::real_lit_into(s, *value, *precision);
            }
            Expr::IntLit(v) => {
                if *v < 0 {
                    // Negative integer literals only arise from constant
                    // folding; parenthesize so `x - -1` stays parseable.
                    let _ = write!(s, "({v})");
                } else {
                    let _ = write!(s, "{v}");
                }
            }
            Expr::LogicalLit(true) => s.push_str(".true."),
            Expr::LogicalLit(false) => s.push_str(".false."),
            Expr::StrLit(text) => {
                s.push('\'');
                s.push_str(&text.replace('\'', "''"));
                s.push('\'');
            }
            Expr::Var(n) => s.push_str(n),
            Expr::NameRef { name, args } => {
                s.push_str(name);
                s.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    Self::expr_into(s, a, 0);
                }
                s.push(')');
            }
            Expr::Bin { op, lhs, rhs } => {
                let p = Self::prec(*op);
                let needs_parens = p < parent_prec
                    // `**` is right-associative; left operand of `**` that is
                    // itself `**` needs parens to re-parse identically.
                    || (*op == BinOp::Pow && parent_prec == Self::prec(BinOp::Pow));
                if needs_parens {
                    s.push('(');
                }
                Self::expr_into(s, lhs, p + if *op == BinOp::Pow { 1 } else { 0 });
                s.push(' ');
                s.push_str(op.symbol());
                s.push(' ');
                // Right operand of left-associative ops needs one more level.
                let rhs_prec = if *op == BinOp::Pow { p } else { p + 1 };
                Self::expr_into(s, rhs, rhs_prec);
                if needs_parens {
                    s.push(')');
                }
            }
            Expr::Un { op, operand } => {
                // Unary +/- sit at the add level (5); `.not.` at level 3.
                let (sym, p) = match op {
                    UnOp::Neg => ("-", 5u8),
                    UnOp::Plus => ("+", 5),
                    UnOp::Not => (".not. ", 3),
                };
                let needs_parens = p < parent_prec;
                if needs_parens {
                    s.push('(');
                }
                s.push_str(sym);
                Self::expr_into(s, operand, p + 1);
                if needs_parens {
                    s.push(')');
                }
            }
        }
    }

    /// Render a real literal so it re-lexes with the same value *and*
    /// precision tag. Doubles use `d` exponents; singles never may.
    fn real_lit_into(s: &mut String, value: f64, precision: FpPrecision) {
        let mut text = format!("{value:?}");
        // `{:?}` on f64 always yields a decimal point or exponent; Fortran
        // uses d/e markers rather than Rust's `e`.
        match precision {
            FpPrecision::Double => {
                if let Some(pos) = text.find(['e', 'E']) {
                    text.replace_range(pos..pos + 1, "d");
                } else {
                    text.push_str("d0");
                }
            }
            FpPrecision::Single => {
                // `1e5` style is fine for singles; ensure a decimal point
                // exists when no exponent does.
                if !text.contains(['e', 'E', '.']) {
                    text.push_str(".0");
                }
            }
        }
        s.push_str(&text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let text = unparse(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("unparse output failed to parse: {e}\n---\n{text}"));
        assert_eq!(p1, p2, "round-trip mismatch\n--- unparsed ---\n{text}");
    }

    #[test]
    fn roundtrips_module_with_procedures() {
        roundtrip(
            r#"
module phys
  use consts, only: g
  real(kind=8), parameter :: dt = 0.25d0
  real(kind=8), allocatable, save :: state(:,:)
contains
  subroutine advance(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      u(i) = u(i) + dt * g
    end do
  end subroutine advance
  function norm(u, n) result(r)
    real(kind=8) :: u(n), r
    integer :: n, i
    r = 0.0d0
    do i = 1, n
      r = r + u(i) * u(i)
    end do
    r = sqrt(r)
  end function norm
end module phys
"#,
        );
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            r#"
program t
  integer :: i
  real(kind=4) :: x
  x = 0.0
  do i = 1, 10, 2
    if (x > 5.0) then
      exit
    else if (x < -1.0) then
      cycle
    else
      x = x + 1.0
    end if
  end do
  do while (x > 0.0)
    x = x - 0.5
  end do
  if (x /= 0.0) stop 2
  print *, 'done', x
end program t
"#,
        );
    }

    #[test]
    fn roundtrips_precision_tagged_literals() {
        roundtrip(
            "program t\n real(kind=8) :: a\n real(kind=4) :: b\n a = 1.5d0 + 2.0d-3 + 3.0d8\n b = 1.5 + 2.0e-3 + 0.5\nend program t\n",
        );
    }

    #[test]
    fn double_literal_value_and_precision_survive() {
        let p =
            parse_program("program t\n real(kind=8) :: a\n a = 0.1d0\nend program t\n").unwrap();
        let text = unparse(&p);
        assert!(text.contains("0.1d0"), "got: {text}");
    }

    #[test]
    fn roundtrips_operator_nesting() {
        roundtrip(
            "program t\n real(kind=8) :: a, b, c\n a = 1.0d0\n b = 2.0d0\n c = (a + b) * (a - b) / (a * b) ** 2\n c = -a ** 2\n c = (-a) ** 2\n c = a - (b - c)\n c = a / (b / c)\n c = (a ** b) ** c\n c = a ** b ** c\nend program t\n",
        );
    }

    #[test]
    fn roundtrips_logical_expressions() {
        roundtrip(
            "program t\n logical :: p, q\n real(kind=8) :: x\n x = 1.0d0\n p = .true.\n q = .not. p .and. x > 0.0d0 .or. x <= -1.0d0\nend program t\n",
        );
    }

    #[test]
    fn roundtrips_allocate_and_strings() {
        roundtrip(
            "program t\n real(kind=8), allocatable :: a(:)\n allocate(a(100))\n print *, 'it''s alive'\n deallocate(a)\nend program t\n",
        );
    }

    #[test]
    fn unparse_decl_renders_single_line() {
        let p = parse_program("module m\n real(kind=8), intent(in) :: a(10), b\nend module m\n");
        // intent outside a procedure is semantically wrong but parses;
        // only the rendering is under test.
        let p = p.unwrap();
        let text = unparse_decl(&p.modules[0].decls[0]);
        assert_eq!(text, "real(kind=8), intent(in) :: a(10), b");
    }

    #[test]
    fn negative_int_literals_parenthesized() {
        let e = Expr::bin(BinOp::Sub, Expr::Var("x".into()), Expr::IntLit(-1));
        assert_eq!(unparse_expr(&e), "x - (-1)");
    }
}
