//! Seeded input perturbation for held-out ensemble validation.
//!
//! A tuned precision configuration is accepted on the strength of a single
//! input realization: the literal constants in the model's main program.
//! A configuration can therefore *overfit the input* — e.g. a branch guarded
//! by `gate > 1.0` never executes during tuning because the driver happens to
//! set `gate` just below 1, so the precision of the variables inside the
//! branch is unconstrained by the scalar metric.
//!
//! This module generates ensemble members: clones of a program in which every
//! real literal appearing in the **main program's** inputs (declaration
//! initializers, assignment right-hand sides, and call arguments) is scaled
//! by `1 + amplitude * u` with `u` drawn uniformly from `[-1, 1)` by a seeded
//! splitmix64 stream. Module code — the kernel under tuning — is never
//! touched, so the precision search space and the program structure are
//! identical across members; only the driver's inputs move. Loop bounds,
//! branch conditions, and array extents in the driver are also left alone:
//! members must execute the same driver control flow so that per-member
//! timings remain comparable.
//!
//! Determinism: the literal visit order is the AST order, and one draw is
//! consumed per visited literal (including exact zeros, which scaling leaves
//! unchanged), so a given `(program, seed, amplitude)` triple always yields
//! the same member.

use crate::ast::{Expr, MainProgram, Program, Stmt};

/// Default relative amplitude for ensemble perturbations: 0.1 %.
///
/// Large enough to cross knife-edge branch guards planted within ~1e-4 of
/// their threshold, small enough that a numerically honest configuration's
/// error metric moves by O(amplitude), not orders of magnitude.
pub const DEFAULT_AMPLITUDE: f64 = 1e-3;

/// Derive the RNG seed for ensemble member `member` from a base seed.
///
/// Member 0 is reserved for the unperturbed tuning input; callers typically
/// perturb with `member_seed(base, m)` for `m >= 1`.
pub fn member_seed(base: u64, member: u32) -> u64 {
    let mut s = Splitmix64::new(
        base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(member))),
    );
    s.next_u64()
}

/// Return a copy of `program` with the main program's input literals
/// perturbed by the seeded stream, plus the number of literals touched.
///
/// Programs without a main program are returned unchanged (count 0).
pub fn perturb_main(program: &Program, seed: u64, amplitude: f64) -> (Program, usize) {
    let mut out = program.clone();
    let mut rng = Splitmix64::new(seed);
    let mut count = 0usize;
    if let Some(main) = &mut out.main {
        perturb_main_program(main, amplitude, &mut rng, &mut count);
    }
    (out, count)
}

fn perturb_main_program(
    main: &mut MainProgram,
    amplitude: f64,
    rng: &mut Splitmix64,
    count: &mut usize,
) {
    for decl in &mut main.decls {
        for entity in &mut decl.entities {
            if let Some(init) = &mut entity.init {
                perturb_expr(init, amplitude, rng, count);
            }
        }
    }
    perturb_stmts(&mut main.body, amplitude, rng, count);
}

fn perturb_stmts(stmts: &mut [Stmt], amplitude: f64, rng: &mut Splitmix64, count: &mut usize) {
    for stmt in stmts {
        match stmt {
            // Only value-producing positions are perturbed: the assignment
            // RHS and arguments handed to procedures. Index expressions,
            // loop bounds, and conditions stay fixed so driver control flow
            // is identical across members.
            Stmt::Assign { value, .. } => perturb_expr(value, amplitude, rng, count),
            Stmt::Call { args, .. } => {
                for a in args {
                    perturb_expr(a, amplitude, rng, count);
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (_, body) in arms {
                    perturb_stmts(body, amplitude, rng, count);
                }
                if let Some(body) = else_body {
                    perturb_stmts(body, amplitude, rng, count);
                }
            }
            Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => {
                perturb_stmts(body, amplitude, rng, count);
            }
            _ => {}
        }
    }
}

fn perturb_expr(expr: &mut Expr, amplitude: f64, rng: &mut Splitmix64, count: &mut usize) {
    match expr {
        Expr::RealLit { value, .. } => {
            *value *= 1.0 + amplitude * rng.next_unit();
            *count += 1;
        }
        Expr::NameRef { args, .. } => {
            for a in args {
                perturb_expr(a, amplitude, rng, count);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            perturb_expr(lhs, amplitude, rng, count);
            perturb_expr(rhs, amplitude, rng, count);
        }
        Expr::Un { operand, .. } => perturb_expr(operand, amplitude, rng, count),
        _ => {}
    }
}

/// Minimal splitmix64 stream — deliberately self-contained so the fortran
/// front end stays dependency-free.
struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn new(seed: u64) -> Self {
        Splitmix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[-1, 1)`.
    fn next_unit(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 random mantissa bits
        let unit = bits as f64 / (1u64 << 53) as f64; // [0, 1)
        2.0 * unit - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const SRC: &str = r#"
module m
contains
  subroutine kern(x, y)
    real(kind=8) :: x, y
    y = x * 2.0d0
  end subroutine kern
end module m

program drive
  use m
  real(kind=8) :: a = 3.0d0
  real(kind=8) :: b
  a = a + 0.5d0
  call kern(a, b)
  if (b > 1.0d0) then
    b = b - 0.25d0
  end if
end program drive
"#;

    #[test]
    fn perturbation_is_deterministic_and_scoped_to_main() {
        let p = parse_program(SRC).unwrap();
        let (m1, n1) = perturb_main(&p, 42, DEFAULT_AMPLITUDE);
        let (m2, n2) = perturb_main(&p, 42, DEFAULT_AMPLITUDE);
        assert_eq!(m1, m2, "same seed must give the same member");
        assert_eq!(n1, n2);
        // Driver literals: init 3.0, rhs 0.5, branch-body 0.25. The branch
        // condition literal 1.0 and all module code stay fixed.
        assert_eq!(n1, 3);
        assert_eq!(p.modules, m1.modules, "module code must not be perturbed");
        assert_ne!(p.main, m1.main, "driver inputs must move");
    }

    #[test]
    fn different_seeds_give_different_members_within_amplitude() {
        let p = parse_program(SRC).unwrap();
        let (m1, _) = perturb_main(&p, 1, DEFAULT_AMPLITUDE);
        let (m2, _) = perturb_main(&p, 2, DEFAULT_AMPLITUDE);
        assert_ne!(m1, m2);
        let init = |prog: &Program| -> f64 {
            match prog.main.as_ref().unwrap().decls[0].entities[0]
                .init
                .as_ref()
                .unwrap()
            {
                Expr::RealLit { value, .. } => *value,
                other => panic!("unexpected init {other:?}"),
            }
        };
        let (v1, v2) = (init(&m1), init(&m2));
        for v in [v1, v2] {
            assert!((v - 3.0).abs() <= 3.0 * DEFAULT_AMPLITUDE * 1.0001);
        }
        assert_ne!(v1, v2);
    }

    #[test]
    fn member_seed_is_stable_and_spreads() {
        assert_eq!(member_seed(7, 1), member_seed(7, 1));
        assert_ne!(member_seed(7, 1), member_seed(7, 2));
        assert_ne!(member_seed(7, 1), member_seed(8, 1));
    }
}
