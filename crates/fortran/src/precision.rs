//! Precision assignments: the representation of one mixed-precision variant.
//!
//! A [`PrecisionMap`] holds a precision for every FP variable in a program's
//! inventory. The search proposes maps, the transformer applies them to the
//! AST, and the evaluator measures the result — the Figure-1 cycle.

use crate::ast::FpPrecision;
use crate::sema::{FpVarId, ProgramIndex};
use serde::{Deserialize, Serialize};

/// A total precision assignment over a program's FP variable inventory,
/// indexed by [`FpVarId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrecisionMap {
    prec: Vec<FpPrecision>,
}

impl PrecisionMap {
    /// The assignment in which every variable keeps its declared precision.
    pub fn declared(index: &ProgramIndex) -> Self {
        PrecisionMap {
            prec: index.fp_variables().map(|v| v.declared).collect(),
        }
    }

    /// Uniform assignment: every variable in the given set lowered/raised to
    /// `p`, everything else at its declared precision.
    pub fn uniform(index: &ProgramIndex, vars: &[FpVarId], p: FpPrecision) -> Self {
        let mut m = Self::declared(index);
        for &v in vars {
            m.set(v, p);
        }
        m
    }

    pub fn len(&self) -> usize {
        self.prec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prec.is_empty()
    }

    pub fn get(&self, id: FpVarId) -> FpPrecision {
        self.prec[id.0]
    }

    pub fn set(&mut self, id: FpVarId, p: FpPrecision) {
        self.prec[id.0] = p;
    }

    /// Variables from `vars` currently assigned `p`.
    pub fn with_precision(&self, vars: &[FpVarId], p: FpPrecision) -> Vec<FpVarId> {
        vars.iter().copied().filter(|v| self.get(*v) == p).collect()
    }

    /// Fraction of `vars` assigned 32-bit — the "% 32-bit" axis of the
    /// paper's Figures 5 and 7.
    pub fn fraction_single(&self, vars: &[FpVarId]) -> f64 {
        if vars.is_empty() {
            return 0.0;
        }
        let n = vars
            .iter()
            .filter(|v| self.get(**v) == FpPrecision::Single)
            .count();
        n as f64 / vars.len() as f64
    }

    /// A short stable fingerprint of the assignment restricted to `vars`
    /// (used to group "unique procedure variants" for Figure 6).
    pub fn fingerprint(&self, vars: &[FpVarId]) -> u64 {
        // FNV-1a over the restricted bit pattern.
        let mut h: u64 = 0xcbf29ce484222325;
        for v in vars {
            let bit = match self.get(*v) {
                FpPrecision::Single => 1u8,
                FpPrecision::Double => 0u8,
            };
            h ^= u64::from(bit) ^ (v.0 as u64).wrapping_mul(0x9e3779b97f4a7c15);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, sema::analyze};

    fn index() -> ProgramIndex {
        let src = "module m\n real(kind=8) :: a, b\n real(kind=4) :: c\nend module m\n";
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn declared_map_matches_declarations() {
        let ix = index();
        let m = PrecisionMap::declared(&ix);
        assert_eq!(m.len(), 3);
        let ids: Vec<_> = ix.fp_variables().map(|v| v.id).collect();
        assert_eq!(m.get(ids[0]), FpPrecision::Double);
        assert_eq!(m.get(ids[2]), FpPrecision::Single);
    }

    #[test]
    fn uniform_lowering_and_fraction() {
        let ix = index();
        let atoms = ix.atoms();
        let m = PrecisionMap::uniform(&ix, &atoms, FpPrecision::Single);
        assert_eq!(m.fraction_single(&atoms), 1.0);
        let d = PrecisionMap::declared(&ix);
        assert!((d.fraction_single(&atoms) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_distinguishes_assignments_on_restriction() {
        let ix = index();
        let atoms = ix.atoms();
        let base = PrecisionMap::declared(&ix);
        let mut flipped = base.clone();
        flipped.set(atoms[0], FpPrecision::Single);
        assert_ne!(base.fingerprint(&atoms), flipped.fingerprint(&atoms));
        // Restricting to vars that did not change gives equal fingerprints.
        assert_eq!(
            base.fingerprint(&atoms[1..]),
            flipped.fingerprint(&atoms[1..])
        );
    }

    #[test]
    fn with_precision_filters() {
        let ix = index();
        let atoms = ix.atoms();
        let mut m = PrecisionMap::declared(&ix);
        m.set(atoms[1], FpPrecision::Single);
        assert_eq!(m.with_precision(&atoms, FpPrecision::Double).len(), 1);
        assert_eq!(m.with_precision(&atoms, FpPrecision::Single).len(), 2);
    }
}
