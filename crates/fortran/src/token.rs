//! Tokens produced by the lexer.
//!
//! Keywords are not distinguished from identifiers at lex time: Fortran has
//! no reserved words (`if = 3` is legal), so the parser decides contextually
//! whether an identifier is a keyword. All identifiers are normalized to
//! lowercase because Fortran is case-insensitive.

use crate::ast::FpPrecision;

/// One lexical token plus the line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword, lowercase-normalized.
    Ident(String),
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    /// Real literal with the precision implied by its spelling:
    /// `1.0` / `1.0e3` / `1.0_4` are single; `1.0d0` / `1.0_8` are double.
    RealLit {
        value: f64,
        precision: FpPrecision,
    },
    /// Character literal, quotes stripped, `''` unescaped to `'`.
    StrLit(String),
    /// Logical literals `.true.` / `.false.`.
    LogicalLit(bool),

    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    ColonColon,
    Colon,
    Semicolon,
    Percent,
    Assign, // =
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Eq,  // == or .eq.
    Ne,  // /= or .ne.
    Lt,  // <  or .lt.
    Le,  // <= or .le.
    Gt,  // >  or .gt.
    Ge,  // >= or .ge.
    And, // .and.
    Or,  // .or.
    Not, // .not.

    /// Statement terminator: end of a (possibly continued) source line.
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given (lowercase) identifier/keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == kw)
    }

    /// Human-readable token description for parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::RealLit { value, .. } => format!("real literal `{value}`"),
            TokenKind::StrLit(s) => format!("string literal '{s}'"),
            TokenKind::LogicalLit(b) => format!(".{b}."),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::ColonColon => "`::`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::StarStar => "`**`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`/=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::And => "`.and.`".into(),
            TokenKind::Or => "`.or.`".into(),
            TokenKind::Not => "`.not.`".into(),
            TokenKind::Newline => "end of line".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check_matches_exact_identifier() {
        let t = TokenKind::Ident("module".into());
        assert!(t.is_kw("module"));
        assert!(!t.is_kw("modul"));
        assert_eq!(t.as_ident(), Some("module"));
    }

    #[test]
    fn describe_formats_are_stable() {
        assert_eq!(TokenKind::ColonColon.describe(), "`::`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "`x`");
    }
}
