//! Source locations attached to declarations and statements.

use serde::{Deserialize, Serialize};

/// A 1-based source line number. Statements in free-form Fortran occupy at
/// least one line, and the tuning pipeline only ever needs line-granular
/// positions (for diffs and error messages), so a line number is the whole
/// span.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Span {
    pub line: u32,
}

impl Span {
    pub fn new(line: u32) -> Self {
        Span { line }
    }
}

/// Spans never participate in AST equality: a re-parsed unparse of a program
/// must compare equal to the original even though every statement moved.
impl PartialEq for Span {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_compare_equal_regardless_of_line() {
        assert_eq!(Span::new(1), Span::new(999));
    }

    #[test]
    fn span_default_is_line_zero() {
        assert_eq!(Span::default().line, 0);
    }
}
