//! The analytical performance model.
//!
//! Execution charges abstract *cycles* per event. Events inside a
//! statically-vectorizable counted loop are buffered in a [`LoopCtx`]; when
//! the loop finishes, the context decides whether the loop actually
//! vectorized (no conversions, no non-inlined calls observed at runtime)
//! and folds the buffered cost into the per-procedure timers at SIMD or
//! scalar rates.
//!
//! Rates are calibrated to the hardware story of the paper (AVX-class CPUs):
//! a vectorized f32 loop runs at twice the throughput of the same loop in
//! f64 (half the lanes *and* half the memory traffic), a scalar loop is
//! precision-insensitive for compute but still pays double memory traffic
//! in f64, conversions cost real instructions, and a wrapper on a call
//! boundary both adds call overhead and blocks vectorization of the
//! enclosing loop. `MPI_ALLREDUCE` is a fixed latency independent of
//! precision (reference \[41\] in the paper: vendor implementations do not vectorize).

use prose_fortran::ast::FpPrecision;
use serde::{Deserialize, Serialize};

/// Cost-model parameters (cycles).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// add/sub/mul and comparisons.
    pub op_basic: f64,
    /// Division.
    pub op_div: f64,
    /// sqrt.
    pub op_sqrt: f64,
    /// exp/log/sin/cos/tan/atan/tanh/log10.
    pub op_transcendental: f64,
    /// `**` with a non-integer exponent.
    pub op_pow: f64,
    /// Integer ALU op.
    pub op_int: f64,
    /// Array element read, per f64 element (f32 costs half).
    pub mem_f64: f64,
    /// Precision conversion instruction (scalar).
    pub cast: f64,
    /// Non-inlined call overhead (frame, spill, branch).
    pub call_overhead: f64,
    /// Fixed latency of an `mpi_allreduce_*` collective.
    pub allreduce: f64,
    /// GPTL-style timer read at procedure entry+exit.
    pub timer_overhead: f64,
    /// Per-iteration loop control (increment + branch).
    pub loop_control: f64,
    /// SIMD lanes for f64 in a vectorized loop (divisor on op+mem cost).
    pub lanes_f64: f64,
    /// SIMD lanes for f32.
    pub lanes_f32: f64,
    /// Inlining threshold: callee statement count.
    pub inline_max_stmts: usize,
    /// Scalar f32 discount on expensive op classes (div/sqrt/
    /// transcendental/pow): on real CPUs `divss`/`sqrtss`/`sinf` are
    /// faster than their double cousins even without SIMD — the source of
    /// funarc's uniform-32 speedup in Figure 2.
    pub narrow_scalar_factor: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            op_basic: 1.0,
            op_div: 4.0,
            op_sqrt: 6.0,
            op_transcendental: 12.0,
            op_pow: 15.0,
            op_int: 0.25,
            mem_f64: 0.5,
            cast: 3.0,
            call_overhead: 20.0,
            allreduce: 400.0,
            timer_overhead: 2.0,
            loop_control: 1.0,
            lanes_f64: 4.0,
            lanes_f32: 8.0,
            inline_max_stmts: 16,
            narrow_scalar_factor: 0.6,
        }
    }
}

/// Classes of chargeable operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Basic,
    Div,
    Sqrt,
    Transcendental,
    Pow,
    Int,
}

impl CostParams {
    pub fn op_cost(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Basic => self.op_basic,
            OpClass::Div => self.op_div,
            OpClass::Sqrt => self.op_sqrt,
            OpClass::Transcendental => self.op_transcendental,
            OpClass::Pow => self.op_pow,
            OpClass::Int => self.op_int,
        }
    }

    /// Op cost adjusted for precision: expensive op classes run faster in
    /// f32 even in scalar code.
    pub fn op_cost_at(&self, class: OpClass, p: FpPrecision) -> f64 {
        let base = self.op_cost(class);
        match (p, class) {
            (
                FpPrecision::Single,
                OpClass::Div | OpClass::Sqrt | OpClass::Transcendental | OpClass::Pow,
            ) => base * self.narrow_scalar_factor,
            _ => base,
        }
    }

    pub fn lanes(&self, p: FpPrecision) -> f64 {
        match p {
            FpPrecision::Single => self.lanes_f32,
            FpPrecision::Double => self.lanes_f64,
        }
    }

    /// Memory cost of one element access at the given precision.
    pub fn mem_cost(&self, p: FpPrecision) -> f64 {
        match p {
            FpPrecision::Single => self.mem_f64 * 0.5,
            FpPrecision::Double => self.mem_f64,
        }
    }
}

/// Cost buffered inside a candidate-vectorizable loop, bucketed by the
/// procedure it should be attributed to and by precision (so a vectorized
/// loop can discount f32 work at f32 lanes and f64 work at f64 lanes).
#[derive(Debug, Default, Clone)]
pub struct LoopBucket {
    /// Cost of f32-tagged ops and memory traffic.
    pub f32_cost: f64,
    /// Cost of f64-tagged (and integer) ops and memory traffic.
    pub f64_cost: f64,
}

/// Dynamic state of one executing candidate-vectorizable loop.
#[derive(Debug)]
pub struct LoopCtx {
    /// (proc id, bucket) — tiny vec: loops touch few procedures.
    pub buckets: Vec<(usize, LoopBucket)>,
    /// A precision conversion happened inside the loop → scalar.
    pub saw_cast: bool,
    /// A non-inlined call happened inside the loop → scalar.
    pub saw_call: bool,
    /// Pre-discounted cost that must be added at face value (nested
    /// constructs that already resolved — defensive; normally empty because
    /// statically-vectorizable loops have no inner loops).
    pub passthrough: Vec<(usize, f64)>,
}

impl LoopCtx {
    pub fn new() -> Self {
        LoopCtx {
            buckets: Vec::new(),
            saw_cast: false,
            saw_call: false,
            passthrough: Vec::new(),
        }
    }

    pub fn bucket(&mut self, proc: usize) -> &mut LoopBucket {
        if let Some(pos) = self.buckets.iter().position(|(p, _)| *p == proc) {
            return &mut self.buckets[pos].1;
        }
        self.buckets.push((proc, LoopBucket::default()));
        &mut self.buckets.last_mut().unwrap().1
    }

    /// Did the loop stay vectorizable at runtime?
    pub fn vectorized(&self) -> bool {
        !self.saw_cast && !self.saw_call
    }

    /// Fold the buffered cost into per-proc charges. Returns
    /// `(proc, cycles)` pairs and whether the loop vectorized.
    pub fn fold(self, params: &CostParams) -> (Vec<(usize, f64)>, bool) {
        let vectorized = self.vectorized();
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.buckets.len());
        for (proc, b) in self.buckets {
            let cost = if vectorized {
                b.f32_cost / params.lanes_f32 + b.f64_cost / params.lanes_f64
            } else {
                b.f32_cost + b.f64_cost
            };
            out.push((proc, cost));
        }
        for (proc, c) in self.passthrough {
            match out.iter_mut().find(|(p, _)| *p == proc) {
                Some((_, acc)) => *acc += c,
                None => out.push((proc, c)),
            }
        }
        (out, vectorized)
    }
}

impl Default for LoopCtx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_make_f32_vector_loops_twice_as_fast() {
        let p = CostParams::default();
        // Same op mix, all-f32 vs all-f64, vectorized.
        let mut c32 = LoopCtx::new();
        c32.bucket(0).f32_cost = 100.0;
        let mut c64 = LoopCtx::new();
        c64.bucket(0).f64_cost = 100.0;
        let (f32_folded, v1) = c32.fold(&p);
        let (f64_folded, v2) = c64.fold(&p);
        assert!(v1 && v2);
        assert!((f64_folded[0].1 / f32_folded[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cast_demotes_loop_to_scalar_cost() {
        let p = CostParams::default();
        let mut ctx = LoopCtx::new();
        ctx.bucket(0).f64_cost = 100.0;
        ctx.saw_cast = true;
        let (folded, vectorized) = ctx.fold(&p);
        assert!(!vectorized);
        assert_eq!(folded[0].1, 100.0);
    }

    #[test]
    fn noninlined_call_demotes_loop() {
        let p = CostParams::default();
        let mut ctx = LoopCtx::new();
        ctx.bucket(3).f32_cost = 80.0;
        ctx.saw_call = true;
        let (folded, vectorized) = ctx.fold(&p);
        assert!(!vectorized);
        assert_eq!(folded, vec![(3, 80.0)]);
    }

    #[test]
    fn buckets_attribute_per_procedure() {
        let p = CostParams::default();
        let mut ctx = LoopCtx::new();
        ctx.bucket(0).f64_cost = 40.0;
        ctx.bucket(1).f64_cost = 8.0;
        ctx.bucket(0).f64_cost += 4.0;
        let (folded, _) = ctx.fold(&p);
        assert_eq!(folded.len(), 2);
        assert_eq!(folded[0], (0, 11.0)); // (40+4)/4 lanes
        assert_eq!(folded[1], (1, 2.0));
    }

    #[test]
    fn mem_cost_halves_for_f32() {
        let p = CostParams::default();
        assert_eq!(
            p.mem_cost(FpPrecision::Single) * 2.0,
            p.mem_cost(FpPrecision::Double)
        );
    }

    #[test]
    fn monotone_adding_cast_cost_never_decreases_time() {
        // Scalar context: cast adds cost directly. Vector context: cast both
        // adds cost and demotes — strictly worse. Sanity-check the latter.
        let p = CostParams::default();
        let mut without = LoopCtx::new();
        without.bucket(0).f64_cost = 100.0;
        let (w, _) = without.fold(&p);
        let mut with = LoopCtx::new();
        with.bucket(0).f64_cost = 100.0 + p.cast;
        with.saw_cast = true;
        let (c, _) = with.fold(&p);
        assert!(c[0].1 > w[0].1);
    }
}
