//! Lowering: resolve the analyzed AST into the interpreter IR.
//!
//! All name resolution happens here, once per variant: locals vs. module
//! globals, array indexing vs. function reference vs. intrinsic, and the
//! static half of the vectorization decision for every counted loop.
//!
//! Array argument association adopts the actual argument's bounds (models
//! pass whole arrays of matching shape; Fortran sequence-association tricks
//! are out of scope and documented as such).

use crate::ir::*;
use prose_analysis::vect::analyze_counted_loop;
use prose_fortran::ast::{self, DimSpec, Expr, LValue, Procedure, Program, Stmt, TypeSpec};
use prose_fortran::error::{FortranError, Result};
use prose_fortran::sema::{intrinsic, ProgramIndex, ScopeId, ScopeKind};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Lower an analyzed program. `wrapper_names` marks synthesized conversion
/// wrappers (never inline candidates); `inline_max_stmts` is the inlining
/// threshold from the cost model.
pub fn lower_program(
    program: &Program,
    index: &ProgramIndex,
    wrapper_names: &HashSet<String>,
    inline_max_stmts: usize,
) -> Result<ProgramIR> {
    lower_program_with_maps(program, index, wrapper_names, inline_max_stmts).map(|(ir, _, _)| ir)
}

/// Global slot numbering: `(module scope, variable name)` → global index.
pub(crate) type GlobalMap = HashMap<(ScopeId, String), usize>;
/// Procedure id numbering: procedure name (`@main` for the main body) → id.
pub(crate) type ProcIdMap = HashMap<String, usize>;

/// [`lower_program`], also returning the global slot map and the procedure
/// id map used during lowering, so the variant fast path
/// ([`crate::template`]) can lower synthesized wrapper procedures against
/// the same slot numbering later.
pub(crate) fn lower_program_with_maps(
    program: &Program,
    index: &ProgramIndex,
    wrapper_names: &HashSet<String>,
    inline_max_stmts: usize,
) -> Result<(ProgramIR, GlobalMap, ProcIdMap)> {
    let mut globals: Vec<SlotDecl> = Vec::new();
    let mut global_map: HashMap<(ScopeId, String), usize> = HashMap::new();

    // Pass 1: create global slots (dims/inits patched in pass 2 so that
    // specification expressions may reference later declarations).
    for m in &program.modules {
        let scope = index.module_scope(&m.name).expect("module indexed");
        for d in &m.decls {
            for e in &d.entities {
                let idx = globals.len();
                globals.push(make_slot_decl(d, e, false));
                global_map.insert((scope, e.name.clone()), idx);
            }
        }
    }

    let mut proc_ids: HashMap<String, usize> = HashMap::new();
    let mut proc_list: Vec<(&Procedure, ScopeId)> = Vec::new();
    for (_, p) in program.all_procedures() {
        let scope = index.scope_of_procedure(&p.name).expect("proc indexed");
        proc_list.push((p, scope));
    }
    for (i, (p, _)) in proc_list.iter().enumerate() {
        proc_ids.insert(p.name.clone(), i);
    }
    let main_proc = proc_list.len();
    proc_ids.insert("@main".into(), main_proc);

    let lw = Lowerer {
        index,
        globals,
        global_map,
        proc_ids,
    };

    // Pass 2: patch global dims and inits.
    let mut patches: Vec<(usize, Option<Vec<IDim>>, Option<IExpr>)> = Vec::new();
    for m in &program.modules {
        let scope = index.module_scope(&m.name).expect("module indexed");
        let ctx = ProcCtx {
            scope,
            slots: Vec::new(),
            slot_map: HashMap::new(),
            lw: &lw,
            local_arrays: None,
        };
        for d in &m.decls {
            for e in &d.entities {
                let idx = lw.global_map[&(scope, e.name.clone())];
                let dims = match d.dims_for(e) {
                    Some(ds) => Some(ctx.lower_decl_dims(ds, d.span.line)?),
                    None => None,
                };
                let init = e.init.as_ref().map(|x| ctx.lower_expr(x)).transpose()?;
                patches.push((idx, dims, init));
            }
        }
    }
    let mut lw = lw;
    for (idx, dims, init) in patches {
        lw.globals[idx].dims = dims;
        lw.globals[idx].init = init;
    }
    let lw = lw;

    let mut procs = Vec::with_capacity(proc_list.len() + 1);
    for (p, scope) in &proc_list {
        procs.push(lower_procedure(
            &lw,
            p,
            *scope,
            wrapper_names,
            inline_max_stmts,
        )?);
    }
    if let Some(mp) = &program.main {
        let scope = (0..index.scope_count())
            .map(ScopeId)
            .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
            .expect("main scope");
        let pseudo = Procedure {
            kind: ast::ProcKind::Subroutine,
            name: "@main".into(),
            params: vec![],
            uses: mp.uses.clone(),
            decls: mp.decls.clone(),
            body: mp.body.clone(),
            span: mp.span,
        };
        procs.push(lower_procedure(
            &lw,
            &pseudo,
            scope,
            wrapper_names,
            inline_max_stmts,
        )?);
    } else {
        return Err(FortranError::sema(
            0,
            "program has no main program unit to execute",
        ));
    }

    let Lowerer {
        globals,
        global_map,
        proc_ids,
        ..
    } = lw;
    Ok((
        ProgramIR {
            procs,
            globals,
            main_proc,
        },
        global_map,
        proc_ids,
    ))
}

/// Rebuild a [`Lowerer`] from a finished baseline lowering, for lowering
/// synthesized wrapper procedures later (built once per template, shared
/// across variant instantiations).
pub(crate) fn wrapper_lowerer<'a>(
    index: &'a ProgramIndex,
    base: &ProgramIR,
    global_map: HashMap<(ScopeId, String), usize>,
    proc_ids: HashMap<String, usize>,
) -> Lowerer<'a> {
    Lowerer {
        index,
        globals: base.globals.clone(),
        global_map,
        proc_ids,
    }
}

/// Lower one synthesized wrapper procedure against the *baseline* program's
/// index and slot numbering (the wrapper itself has no scope in `index`).
///
/// Local names resolve through the wrapper's own declarations; everything
/// else (module globals referenced by forwarded dimension expressions, the
/// callee procedure) resolves through `callee_scope` — the same names the
/// faithful path resolves after inserting the wrapper into the callee's
/// module and re-analyzing the variant source.
pub(crate) fn lower_wrapper_procedure(
    lw: &Lowerer<'_>,
    p: &Procedure,
    callee_scope: ScopeId,
) -> Result<ProcIR> {
    // Wrapper locals whose declarations carry dimensions: the wrapper-local
    // substitute for `ProgramIndex::lookup(..).is_array()`.
    let arrays: HashSet<String> = p
        .decls
        .iter()
        .flat_map(|d| d.entities.iter().filter(|e| d.dims_for(e).is_some()))
        .map(|e| e.name.clone())
        .collect();
    let wrapper_names: HashSet<String> = std::iter::once(p.name.clone()).collect();
    lower_procedure_inner(lw, p, callee_scope, &wrapper_names, 0, Some(arrays))
}

pub(crate) struct Lowerer<'a> {
    index: &'a ProgramIndex,
    globals: Vec<SlotDecl>,
    global_map: HashMap<(ScopeId, String), usize>,
    proc_ids: HashMap<String, usize>,
}

fn lower_procedure(
    lw: &Lowerer<'_>,
    p: &Procedure,
    scope: ScopeId,
    wrapper_names: &HashSet<String>,
    inline_max_stmts: usize,
) -> Result<ProcIR> {
    lower_procedure_inner(lw, p, scope, wrapper_names, inline_max_stmts, None)
}

fn lower_procedure_inner(
    lw: &Lowerer<'_>,
    p: &Procedure,
    scope: ScopeId,
    wrapper_names: &HashSet<String>,
    inline_max_stmts: usize,
    local_arrays: Option<HashSet<String>>,
) -> Result<ProcIR> {
    // Pass 1: create slots.
    let mut slots = Vec::new();
    let mut slot_map = HashMap::new();
    for d in &p.decls {
        for e in &d.entities {
            let idx = slots.len();
            slots.push(make_slot_decl(d, e, p.params.contains(&e.name)));
            slot_map.insert(e.name.clone(), idx);
        }
    }
    let mut ctx = ProcCtx {
        scope,
        slots,
        slot_map,
        lw,
        local_arrays,
    };

    // Pass 2: dims and inits (may reference any slot).
    let mut patches: Vec<(usize, Option<Vec<IDim>>, Option<IExpr>)> = Vec::new();
    for d in &p.decls {
        for e in &d.entities {
            let idx = ctx.slot_map[&e.name];
            let dims = match d.dims_for(e) {
                Some(ds) => Some(ctx.lower_decl_dims(ds, d.span.line)?),
                None => None,
            };
            let init = e.init.as_ref().map(|x| ctx.lower_expr(x)).transpose()?;
            patches.push((idx, dims, init));
        }
    }
    for (idx, dims, init) in patches {
        ctx.slots[idx].dims = dims;
        ctx.slots[idx].init = init;
    }

    let params: Vec<usize> = p
        .params
        .iter()
        .map(|name| {
            *ctx.slot_map
                .get(name)
                .expect("sema checked dummy declarations")
        })
        .collect();
    let result_slot = p.result_name().map(|r| {
        *ctx.slot_map
            .get(r)
            .expect("sema checked result declaration")
    });

    let body = ctx.lower_stmts(&p.body)?;

    let stmt_count = count_stmts(&body);
    let has_loop = body_has_loop(&body);
    let leaf = body_is_leaf(&body);
    let is_wrapper = wrapper_names.contains(&p.name);
    let inlinable = !is_wrapper && !has_loop && leaf && stmt_count <= inline_max_stmts;

    Ok(ProcIR {
        name: Arc::from(p.name.as_str()),
        is_function: p.is_function(),
        result_slot,
        params,
        slots: ctx.slots,
        body,
        inlinable,
        is_wrapper,
    })
}

fn make_slot_decl(d: &ast::Declaration, e: &ast::EntityDecl, is_dummy: bool) -> SlotDecl {
    let ty = match d.type_spec {
        TypeSpec::Real(p) => STy::Fp(p),
        TypeSpec::Integer => STy::Int,
        TypeSpec::Logical => STy::Bool,
        TypeSpec::Character => STy::Str,
    };
    SlotDecl {
        name: Arc::from(e.name.as_str()),
        ty,
        dims: None,
        init: None,
        allocatable: d.is_allocatable(),
        intent: d.intent(),
        is_const: d.is_parameter(),
        is_dummy,
    }
}

/// Per-procedure lowering context (read-only after slot creation).
struct ProcCtx<'a> {
    scope: ScopeId,
    slots: Vec<SlotDecl>,
    slot_map: HashMap<String, usize>,
    lw: &'a Lowerer<'a>,
    /// `Some` when lowering a synthesized wrapper that has no scope in the
    /// program index: the set of local names declared with dimensions.
    /// Local name classification then comes from the wrapper's own
    /// declarations instead of an index lookup.
    local_arrays: Option<HashSet<String>>,
}

impl<'a> ProcCtx<'a> {
    fn err(&self, line: u32, msg: impl Into<String>) -> FortranError {
        FortranError::sema(line, msg.into())
    }

    /// Resolve a variable name to a slot reference.
    fn resolve(&self, name: &str) -> Option<SlotRef> {
        if let Some(i) = self.slot_map.get(name) {
            return Some(SlotRef::Local(*i));
        }
        let sym = self.lw.index.lookup(self.scope, name)?;
        self.lw
            .global_map
            .get(&(sym.scope, sym.name.clone()))
            .map(|i| SlotRef::Global(*i))
    }

    fn slot_decl(&self, r: SlotRef) -> &SlotDecl {
        match r {
            SlotRef::Local(i) => &self.slots[i],
            SlotRef::Global(i) => &self.lw.globals[i],
        }
    }

    fn is_array_name(&self, name: &str) -> bool {
        if let Some(arrays) = &self.local_arrays {
            if self.slot_map.contains_key(name) {
                return arrays.contains(name);
            }
        }
        self.lw
            .index
            .lookup(self.scope, name)
            .map(|s| s.is_array())
            .unwrap_or(false)
    }

    /// Is `name` a user-procedure reference (not a variable) here?
    fn is_proc_name(&self, name: &str) -> bool {
        if self.local_arrays.is_some() && self.slot_map.contains_key(name) {
            return false;
        }
        self.lw.index.lookup(self.scope, name).is_none() && self.lw.index.procedure(name).is_some()
    }

    fn lower_decl_dims(&self, dims: &[DimSpec], line: u32) -> Result<Vec<IDim>> {
        dims.iter()
            .map(|d| match d {
                DimSpec::Upper(e) => Ok(IDim::Explicit {
                    lower: None,
                    upper: self.lower_expr(e)?,
                }),
                DimSpec::Range(lo, hi) => Ok(IDim::Explicit {
                    lower: Some(self.lower_expr(lo)?),
                    upper: self.lower_expr(hi)?,
                }),
                DimSpec::Deferred => Ok(IDim::Deferred),
            })
            .collect::<Result<Vec<_>>>()
            .map_err(|e| self.err(line, e.to_string()))
    }

    fn lower_stmts(&self, body: &[Stmt]) -> Result<Vec<IStmt>> {
        body.iter().map(|s| self.lower_stmt(s)).collect()
    }

    fn lower_stmt(&self, s: &Stmt) -> Result<IStmt> {
        let line = s.span().line;
        match s {
            Stmt::Assign { target, value, .. } => {
                match target {
                    LValue::Var(name) => {
                        let slot = self
                            .resolve(name)
                            .ok_or_else(|| self.err(line, format!("unresolved `{name}`")))?;
                        if self.is_array_name(name) {
                            // `a = b` whole-array copy vs `a = <scalar>`
                            // broadcast. Checked before lowering the value:
                            // a bare array reference is only legal here.
                            if let Expr::Var(srcn) = value {
                                if self.is_array_name(srcn) {
                                    let src = self.resolve(srcn).ok_or_else(|| {
                                        self.err(line, format!("unresolved `{srcn}`"))
                                    })?;
                                    return Ok(IStmt::AssignArrayCopy {
                                        dst: slot,
                                        src,
                                        line,
                                    });
                                }
                            }
                            let v = self.lower_expr(value)?;
                            Ok(IStmt::AssignBroadcast {
                                slot,
                                value: v,
                                line,
                            })
                        } else {
                            let v = self.lower_expr(value)?;
                            Ok(IStmt::AssignScalar {
                                slot,
                                value: v,
                                line,
                            })
                        }
                    }
                    LValue::Index { name, indices } => {
                        let slot = self
                            .resolve(name)
                            .ok_or_else(|| self.err(line, format!("unresolved `{name}`")))?;
                        let idx = indices
                            .iter()
                            .map(|e| self.lower_expr(e))
                            .collect::<Result<Vec<_>>>()?;
                        let v = self.lower_expr(value)?;
                        Ok(IStmt::AssignElem {
                            slot,
                            indices: idx,
                            value: v,
                            line,
                        })
                    }
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                let mut iarms = Vec::with_capacity(arms.len());
                for (cond, b) in arms {
                    iarms.push((self.lower_expr(cond)?, self.lower_stmts(b)?));
                }
                let ielse = match else_body {
                    Some(b) => self.lower_stmts(b)?,
                    None => Vec::new(),
                };
                Ok(IStmt::If {
                    arms: iarms,
                    else_body: ielse,
                    line,
                })
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let vslot = self
                    .resolve(var)
                    .ok_or_else(|| self.err(line, format!("unresolved loop var `{var}`")))?;
                let la = analyze_counted_loop(var, body, &|n| self.is_array_name(n), &|n| {
                    self.is_proc_name(n)
                });
                let meta = LoopMeta {
                    vectorizable: la.vectorizable,
                    blocker: la.blocker,
                };
                Ok(IStmt::Do {
                    var: vslot,
                    start: self.lower_expr(start)?,
                    end: self.lower_expr(end)?,
                    step: step.as_ref().map(|e| self.lower_expr(e)).transpose()?,
                    body: self.lower_stmts(body)?,
                    meta,
                    line,
                })
            }
            Stmt::DoWhile { cond, body, .. } => Ok(IStmt::DoWhile {
                cond: self.lower_expr(cond)?,
                body: self.lower_stmts(body)?,
                line,
            }),
            Stmt::Call { name, args, .. } => {
                if let Some(i) = intrinsic(name) {
                    if i.kind == prose_fortran::sema::IntrinsicKind::Subroutine {
                        return self.lower_intrinsic_sub(name, args, line);
                    }
                }
                let proc = *self
                    .lw
                    .proc_ids
                    .get(name)
                    .ok_or_else(|| self.err(line, format!("unknown procedure `{name}`")))?;
                let iargs = self.lower_args(name, args, line)?;
                Ok(IStmt::CallSub {
                    proc,
                    args: iargs,
                    line,
                })
            }
            Stmt::Return { .. } => Ok(IStmt::Return),
            Stmt::Exit { .. } => Ok(IStmt::Exit),
            Stmt::Cycle { .. } => Ok(IStmt::Cycle),
            Stmt::Print { items, .. } => {
                let it = items
                    .iter()
                    .map(|e| self.lower_expr(e))
                    .collect::<Result<Vec<_>>>()?;
                Ok(IStmt::Print { items: it, line })
            }
            Stmt::Stop { code, .. } => Ok(IStmt::Stop { code: *code, line }),
            Stmt::Allocate { items, .. } => {
                let mut stmts = Vec::new();
                for (name, dims) in items {
                    let slot = self
                        .resolve(name)
                        .ok_or_else(|| self.err(line, format!("unresolved `{name}`")))?;
                    let idims = self.lower_alloc_dims(dims, line)?;
                    stmts.push(IStmt::Allocate {
                        slot,
                        dims: idims,
                        line,
                    });
                }
                if stmts.len() == 1 {
                    Ok(stmts.pop().unwrap())
                } else {
                    Ok(IStmt::If {
                        arms: vec![(IExpr::BoolLit(true), stmts)],
                        else_body: vec![],
                        line,
                    })
                }
            }
            Stmt::Deallocate { names, .. } => {
                let slots = names
                    .iter()
                    .map(|n| {
                        self.resolve(n)
                            .ok_or_else(|| self.err(line, format!("unresolved `{n}`")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(IStmt::Deallocate { slots, line })
            }
        }
    }

    fn lower_alloc_dims(&self, dims: &[DimSpec], line: u32) -> Result<Vec<IDim>> {
        dims.iter()
            .map(|d| match d {
                DimSpec::Upper(e) => Ok(IDim::Explicit {
                    lower: None,
                    upper: self.lower_expr(e)?,
                }),
                DimSpec::Range(lo, hi) => Ok(IDim::Explicit {
                    lower: Some(self.lower_expr(lo)?),
                    upper: self.lower_expr(hi)?,
                }),
                DimSpec::Deferred => Err(self.err(line, "`:` is not a valid allocate bound")),
            })
            .collect()
    }

    fn lower_intrinsic_sub(&self, name: &str, args: &[Expr], line: u32) -> Result<IStmt> {
        match name {
            "prose_record" | "prose_record_array" => {
                let label: Arc<str> = match &args[0] {
                    Expr::StrLit(s) => Arc::from(s.as_str()),
                    _ => {
                        return Err(self.err(
                            line,
                            "first argument of prose_record must be a string literal",
                        ))
                    }
                };
                if name == "prose_record" {
                    let v = self.lower_expr(&args[1])?;
                    Ok(IStmt::CallIntrinsicSub {
                        f: IntrinsicSub::ProseRecord,
                        name_arg: Some(label),
                        args: vec![IArg::Value(v)],
                        line,
                    })
                } else {
                    let slot =
                        match &args[1] {
                            Expr::Var(n) if self.is_array_name(n) => self
                                .resolve(n)
                                .ok_or_else(|| self.err(line, format!("unresolved `{n}`")))?,
                            _ => return Err(self.err(
                                line,
                                "second argument of prose_record_array must be an array variable",
                            )),
                        };
                    Ok(IStmt::CallIntrinsicSub {
                        f: IntrinsicSub::ProseRecordArray,
                        name_arg: Some(label),
                        args: vec![IArg::ArrayRef(slot)],
                        line,
                    })
                }
            }
            "mpi_allreduce_sum" | "mpi_allreduce_max" => {
                let f = if name == "mpi_allreduce_sum" {
                    IntrinsicSub::MpiAllreduceSum
                } else {
                    IntrinsicSub::MpiAllreduceMax
                };
                let local = IArg::Value(self.lower_expr(&args[0])?);
                let out = self.lower_lvalue_arg(&args[1], line)?;
                Ok(IStmt::CallIntrinsicSub {
                    f,
                    name_arg: None,
                    args: vec![local, out],
                    line,
                })
            }
            other => Err(self.err(line, format!("unsupported intrinsic subroutine `{other}`"))),
        }
    }

    fn lower_lvalue_arg(&self, e: &Expr, line: u32) -> Result<IArg> {
        match e {
            Expr::Var(n) if !self.is_array_name(n) => {
                let slot = self
                    .resolve(n)
                    .ok_or_else(|| self.err(line, format!("unresolved `{n}`")))?;
                Ok(IArg::ScalarRef(ILValue::Scalar(slot)))
            }
            Expr::NameRef { name, args } if self.is_array_name(name) => {
                let slot = self
                    .resolve(name)
                    .ok_or_else(|| self.err(line, format!("unresolved `{name}`")))?;
                let idx = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>>>()?;
                Ok(IArg::ScalarRef(ILValue::Elem { slot, indices: idx }))
            }
            _ => Err(self.err(line, "output argument must be a variable or array element")),
        }
    }

    /// Lower call arguments against the callee's dummy shapes.
    fn lower_args(&self, callee: &str, args: &[Expr], line: u32) -> Result<Vec<IArg>> {
        let pinfo = self
            .lw
            .index
            .procedure(callee)
            .ok_or_else(|| self.err(line, format!("unknown procedure `{callee}`")))?;
        let mut out = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let param = &pinfo.params[i];
            let dummy = self
                .lw
                .index
                .lookup(pinfo.scope, param)
                .ok_or_else(|| self.err(line, format!("undeclared dummy `{param}`")))?;
            if dummy.is_array() {
                match a {
                    Expr::Var(n) if self.is_array_name(n) => {
                        let slot = self
                            .resolve(n)
                            .ok_or_else(|| self.err(line, format!("unresolved `{n}`")))?;
                        out.push(IArg::ArrayRef(slot));
                    }
                    _ => {
                        return Err(self.err(
                            line,
                            format!(
                                "argument {} of `{callee}` must be a whole array (dummy `{param}` is rank {})",
                                i + 1,
                                dummy.rank.unwrap_or(0)
                            ),
                        ))
                    }
                }
            } else {
                match a {
                    Expr::Var(n) if !self.is_array_name(n) => {
                        let slot = self
                            .resolve(n)
                            .ok_or_else(|| self.err(line, format!("unresolved `{n}`")))?;
                        if self.slot_decl(slot).is_const {
                            out.push(IArg::Value(IExpr::LoadScalar(slot)));
                        } else {
                            out.push(IArg::ScalarRef(ILValue::Scalar(slot)));
                        }
                    }
                    Expr::NameRef { name, args: idx } if self.is_array_name(name) => {
                        let slot = self
                            .resolve(name)
                            .ok_or_else(|| self.err(line, format!("unresolved `{name}`")))?;
                        let ii = idx
                            .iter()
                            .map(|e| self.lower_expr(e))
                            .collect::<Result<Vec<_>>>()?;
                        out.push(IArg::ScalarRef(ILValue::Elem { slot, indices: ii }));
                    }
                    other => out.push(IArg::Value(self.lower_expr(other)?)),
                }
            }
        }
        Ok(out)
    }

    fn lower_expr(&self, e: &Expr) -> Result<IExpr> {
        match e {
            Expr::RealLit { value, .. } => Ok(IExpr::RealLit(*value)),
            Expr::IntLit(v) => Ok(IExpr::IntLit(*v)),
            Expr::LogicalLit(b) => Ok(IExpr::BoolLit(*b)),
            Expr::StrLit(s) => Ok(IExpr::StrLit(Arc::from(s.as_str()))),
            Expr::Var(n) => {
                if self.is_array_name(n) {
                    return Err(self.err(
                        0,
                        format!("whole-array expression `{n}` is not supported in this context"),
                    ));
                }
                let slot = self
                    .resolve(n)
                    .ok_or_else(|| self.err(0, format!("unresolved `{n}`")))?;
                Ok(IExpr::LoadScalar(slot))
            }
            Expr::NameRef { name, args } => {
                if self.is_array_name(name) {
                    let slot = self
                        .resolve(name)
                        .ok_or_else(|| self.err(0, format!("unresolved `{name}`")))?;
                    let idx = args
                        .iter()
                        .map(|a| self.lower_expr(a))
                        .collect::<Result<Vec<_>>>()?;
                    return Ok(IExpr::LoadElem { slot, indices: idx });
                }
                if self.resolve(name).is_none() {
                    if let Some(intr) = intrinsic(name) {
                        if intr.kind == prose_fortran::sema::IntrinsicKind::Function {
                            return self.lower_intrinsic_fn(name, args);
                        }
                    }
                }
                let proc = *self
                    .lw
                    .proc_ids
                    .get(name)
                    .ok_or_else(|| self.err(0, format!("unknown function `{name}`")))?;
                let iargs = self.lower_args(name, args, 0)?;
                Ok(IExpr::CallFun { proc, args: iargs })
            }
            Expr::Bin { op, lhs, rhs } => Ok(IExpr::Bin {
                op: *op,
                lhs: Box::new(self.lower_expr(lhs)?),
                rhs: Box::new(self.lower_expr(rhs)?),
            }),
            Expr::Un { op, operand } => Ok(IExpr::Un {
                op: *op,
                operand: Box::new(self.lower_expr(operand)?),
            }),
        }
    }

    fn lower_intrinsic_fn(&self, name: &str, args: &[Expr]) -> Result<IExpr> {
        use IntrinsicFn::*;
        match name {
            "size" => {
                let slot = match &args[0] {
                    Expr::Var(n) if self.is_array_name(n) => self
                        .resolve(n)
                        .ok_or_else(|| self.err(0, format!("unresolved `{n}`")))?,
                    _ => return Err(self.err(0, "size() requires an array variable")),
                };
                let dim = match args.get(1) {
                    Some(d) => Some(Box::new(self.lower_expr(d)?)),
                    None => None,
                };
                return Ok(IExpr::SizeOf { slot, dim });
            }
            "sum" | "maxval" | "minval" => {
                let slot = match &args[0] {
                    Expr::Var(n) if self.is_array_name(n) => self
                        .resolve(n)
                        .ok_or_else(|| self.err(0, format!("unresolved `{n}`")))?,
                    _ => return Err(self.err(0, format!("{name}() requires an array variable"))),
                };
                let f = match name {
                    "sum" => Sum,
                    "maxval" => Maxval,
                    _ => Minval,
                };
                return Ok(IExpr::Reduce { f, slot });
            }
            "real" => {
                let prec = match args.get(1) {
                    Some(Expr::IntLit(k)) => prose_fortran::ast::FpPrecision::from_kind(*k),
                    Some(_) => return Err(self.err(0, "real() kind must be a literal")),
                    None => None,
                };
                let a0 = self.lower_expr(&args[0])?;
                return Ok(IExpr::Intrinsic {
                    f: Real(prec),
                    args: vec![a0],
                });
            }
            _ => {}
        }
        let f = match name {
            "abs" => Abs,
            "sqrt" => Sqrt,
            "exp" => Exp,
            "log" => Log,
            "log10" => Log10,
            "sin" => Sin,
            "cos" => Cos,
            "tan" => Tan,
            "atan" => Atan,
            "atan2" => Atan2,
            "tanh" => Tanh,
            "max" => Max,
            "min" => Min,
            "mod" => Mod,
            "sign" => Sign,
            "dble" => Dble,
            "sngl" => Sngl,
            "int" => Int,
            "nint" => Nint,
            "floor" => Floor,
            "epsilon" => Epsilon,
            "huge" => Huge,
            "tiny" => Tiny,
            "isnan" => Isnan,
            other => return Err(self.err(0, format!("unsupported intrinsic `{other}`"))),
        };
        let iargs = args
            .iter()
            .map(|a| self.lower_expr(a))
            .collect::<Result<Vec<_>>>()?;
        Ok(IExpr::Intrinsic { f, args: iargs })
    }
}

fn count_stmts(body: &[IStmt]) -> usize {
    let mut n = 0;
    for s in body {
        n += 1;
        match s {
            IStmt::If {
                arms, else_body, ..
            } => {
                for (_, b) in arms {
                    n += count_stmts(b);
                }
                n += count_stmts(else_body);
            }
            IStmt::Do { body, .. } | IStmt::DoWhile { body, .. } => n += count_stmts(body),
            _ => {}
        }
    }
    n
}

fn body_has_loop(body: &[IStmt]) -> bool {
    body.iter().any(|s| match s {
        IStmt::Do { .. } | IStmt::DoWhile { .. } => true,
        IStmt::If {
            arms, else_body, ..
        } => arms.iter().any(|(_, b)| body_has_loop(b)) || body_has_loop(else_body),
        _ => false,
    })
}

/// Leaf: calls no user procedures.
fn body_is_leaf(body: &[IStmt]) -> bool {
    fn expr_has_call(e: &IExpr) -> bool {
        match e {
            IExpr::CallFun { .. } => true,
            IExpr::Bin { lhs, rhs, .. } => expr_has_call(lhs) || expr_has_call(rhs),
            IExpr::Un { operand, .. } => expr_has_call(operand),
            IExpr::Intrinsic { args, .. } => args.iter().any(expr_has_call),
            IExpr::LoadElem { indices, .. } => indices.iter().any(expr_has_call),
            IExpr::SizeOf { dim, .. } => dim.as_deref().map(expr_has_call).unwrap_or(false),
            _ => false,
        }
    }
    fn stmt_is_leaf(s: &IStmt) -> bool {
        match s {
            IStmt::CallSub { .. } => false,
            IStmt::AssignScalar { value, .. } | IStmt::AssignBroadcast { value, .. } => {
                !expr_has_call(value)
            }
            IStmt::AssignElem { indices, value, .. } => {
                !expr_has_call(value) && !indices.iter().any(expr_has_call)
            }
            IStmt::If {
                arms, else_body, ..
            } => {
                arms.iter()
                    .all(|(c, b)| !expr_has_call(c) && b.iter().all(stmt_is_leaf))
                    && else_body.iter().all(stmt_is_leaf)
            }
            IStmt::Do {
                start,
                end,
                step,
                body,
                ..
            } => {
                !expr_has_call(start)
                    && !expr_has_call(end)
                    && !step.as_ref().map(expr_has_call).unwrap_or(false)
                    && body.iter().all(stmt_is_leaf)
            }
            IStmt::DoWhile { cond, body, .. } => {
                !expr_has_call(cond) && body.iter().all(stmt_is_leaf)
            }
            IStmt::Print { items, .. } => !items.iter().any(expr_has_call),
            _ => true,
        }
    }
    body.iter().all(stmt_is_leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    fn lower(src: &str) -> ProgramIR {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        lower_program(&p, &ix, &HashSet::new(), 16).unwrap()
    }

    #[test]
    fn lowers_main_with_globals_and_procs() {
        let ir = lower(
            r#"
module m
  real(kind=8) :: shared = 1.5d0
contains
  subroutine bump()
    shared = shared + 1.0d0
  end subroutine bump
end module m
program main
  use m
  call bump()
end program main
"#,
        );
        assert_eq!(ir.globals.len(), 1);
        assert_eq!(&*ir.globals[0].name, "shared");
        assert!(ir.globals[0].init.is_some());
        assert_eq!(ir.procs.len(), 2); // bump + @main
        let bump = &ir.procs[ir.proc_index("bump").unwrap()];
        assert!(matches!(
            bump.body[0],
            IStmt::AssignScalar {
                slot: SlotRef::Global(0),
                ..
            }
        ));
    }

    #[test]
    fn resolves_array_vs_function_reference() {
        let ir = lower(
            r#"
module m
contains
  function f(x) result(r)
    real(kind=8) :: x, r
    r = x
  end function f
  subroutine s(a, n)
    real(kind=8) :: a(n)
    integer :: n
    a(1) = f(a(2))
  end subroutine s
end module m
program main
end program main
"#,
        );
        let s = &ir.procs[ir.proc_index("s").unwrap()];
        match &s.body[0] {
            IStmt::AssignElem {
                value: IExpr::CallFun { args, .. },
                ..
            } => {
                assert!(matches!(args[0], IArg::ScalarRef(ILValue::Elem { .. })));
            }
            other => panic!("bad lowering: {other:?}"),
        }
        // The dummy array slot has its declared dims lowered.
        assert!(s.slots.iter().any(|d| &*d.name == "a" && d.dims.is_some()));
    }

    #[test]
    fn loop_metadata_attached() {
        let ir = lower(
            r#"
module m
contains
  subroutine k(u, t, n)
    real(kind=8) :: u(n), t(n)
    integer :: n, i
    do i = 1, n
      t(i) = u(i) * 2.0d0
    end do
    do i = 2, n
      t(i) = t(i-1) + u(i)
    end do
  end subroutine k
end module m
program main
end program main
"#,
        );
        let k = &ir.procs[ir.proc_index("k").unwrap()];
        match (&k.body[0], &k.body[1]) {
            (IStmt::Do { meta: m1, .. }, IStmt::Do { meta: m2, .. }) => {
                assert!(m1.vectorizable);
                assert!(!m2.vectorizable);
            }
            other => panic!("bad lowering: {other:?}"),
        }
    }

    #[test]
    fn small_leaf_function_is_inlinable_but_loops_are_not() {
        let ir = lower(
            r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0 + 1.0d0
  end function flux
  subroutine big(u, n)
    real(kind=8) :: u(n)
    integer :: n, i
    do i = 1, n
      u(i) = flux(u(i))
    end do
  end subroutine big
end module m
program main
end program main
"#,
        );
        assert!(ir.procs[ir.proc_index("flux").unwrap()].inlinable);
        assert!(!ir.procs[ir.proc_index("big").unwrap()].inlinable);
    }

    #[test]
    fn wrappers_are_never_inlinable() {
        let src = r#"
module m
contains
  function flux_w8(q) result(f)
    real(kind=8) :: q, f
    f = q
  end function flux_w8
end module m
program main
end program main
"#;
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let mut wrappers = HashSet::new();
        wrappers.insert("flux_w8".to_string());
        let ir = lower_program(&p, &ix, &wrappers, 16).unwrap();
        let w = &ir.procs[ir.proc_index("flux_w8").unwrap()];
        assert!(w.is_wrapper);
        assert!(!w.inlinable);
    }

    #[test]
    fn intrinsic_subs_lower() {
        let ir = lower(
            r#"
program main
  real(kind=8) :: x, g, a(3)
  x = 1.0d0
  a = 0.0d0
  call prose_record('x', x)
  call prose_record_array('a', a)
  call mpi_allreduce_sum(x * 2.0d0, g)
end program main
"#,
        );
        let main = &ir.procs[ir.main_proc];
        assert!(matches!(
            main.body[2],
            IStmt::CallIntrinsicSub {
                f: IntrinsicSub::ProseRecord,
                ..
            }
        ));
        assert!(matches!(
            main.body[3],
            IStmt::CallIntrinsicSub {
                f: IntrinsicSub::ProseRecordArray,
                ..
            }
        ));
        match &main.body[4] {
            IStmt::CallIntrinsicSub {
                f: IntrinsicSub::MpiAllreduceSum,
                args,
                ..
            } => {
                assert!(matches!(args[0], IArg::Value(_)));
                assert!(matches!(args[1], IArg::ScalarRef(_)));
            }
            other => panic!("bad lowering: {other:?}"),
        }
    }

    #[test]
    fn whole_array_assignment_is_broadcast() {
        let ir = lower("program main\n real(kind=8) :: a(4)\n a = 1.0d0\nend program main\n");
        let main = &ir.procs[ir.main_proc];
        assert!(matches!(main.body[0], IStmt::AssignBroadcast { .. }));
    }

    #[test]
    fn size_and_reductions_lower_to_dedicated_nodes() {
        let ir = lower(
            "program main\n real(kind=8) :: a(4), s\n integer :: n\n a = 1.0d0\n n = size(a)\n s = sum(a) + maxval(a) - minval(a)\nend program main\n",
        );
        let main = &ir.procs[ir.main_proc];
        assert!(matches!(
            main.body[1],
            IStmt::AssignScalar {
                value: IExpr::SizeOf { .. },
                ..
            }
        ));
        match &main.body[2] {
            IStmt::AssignScalar {
                value: IExpr::Bin { .. },
                ..
            } => {}
            other => panic!("bad lowering: {other:?}"),
        }
    }

    #[test]
    fn named_constant_args_pass_by_value() {
        let ir = lower(
            r#"
module m
  real(kind=8), parameter :: c = 2.0d0
contains
  subroutine s(x)
    real(kind=8) :: x
    x = x + 1.0d0
  end subroutine s
  subroutine t()
    real(kind=8) :: y
    y = c
    call s(y)
  end subroutine t
end module m
program main
  use m
  call t()
end program main
"#,
        );
        let t = &ir.procs[ir.proc_index("t").unwrap()];
        match &t.body[1] {
            IStmt::CallSub { args, .. } => {
                assert!(matches!(args[0], IArg::ScalarRef(_)));
            }
            other => panic!("bad lowering: {other:?}"),
        }
    }

    #[test]
    fn explicit_bounds_with_ranges_lower() {
        let ir = lower("program main\n real(kind=8) :: a(0:4, 2)\n a = 0.0d0\nend program main\n");
        let main = &ir.procs[ir.main_proc];
        let a = main.slots.iter().find(|s| &*s.name == "a").unwrap();
        let dims = a.dims.as_ref().unwrap();
        assert_eq!(dims.len(), 2);
        assert!(matches!(&dims[0], IDim::Explicit { lower: Some(_), .. }));
        assert!(matches!(&dims[1], IDim::Explicit { lower: None, .. }));
    }
}
