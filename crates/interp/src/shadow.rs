//! Shadow-precision execution: fp64 reference values computed in lockstep
//! with the variant's mixed-precision arithmetic.
//!
//! When enabled ([`crate::run::RunConfig::shadow`]), the machine carries one
//! fp64 shadow value per scalar slot and per FP array element. Shadows follow
//! the *same control flow* as the primary computation (branches, loop trip
//! counts, and integer results always snap to the primary), but every FP
//! operation is replayed in f64 on the shadow operands. The divergence
//! between a variable's primary and shadow value is exactly the rounding
//! error the variant's precision choices introduced along the executed path —
//! the RAPTOR/Verificarlo-style diagnostic the guardrail gate consumes.
//!
//! Three families of signal are collected:
//!
//! * **Per-variable error**: maximum and final relative error observed at
//!   each store, keyed by procedure + slot.
//! * **Catastrophic cancellation**: an add/sub whose result loses at least
//!   [`CANCEL_LOST_BITS`] bits of magnitude against its operands *and* whose
//!   shadow disagrees by at least [`CANCEL_DIVERGENCE`] — benign cancellation
//!   (both precisions cancel identically) is deliberately not flagged.
//! * **NaN/Inf provenance**: the first op/proc/line that produced a
//!   non-finite value, with injected faults ([`prose_faults`]) attributed to
//!   the injection instead of being reported as genuine.
//!
//! Invariant: shadow bookkeeping never charges cycles, counts ops, bumps
//! events, or touches primary values — a shadow-on run is bit-identical to a
//! shadow-off run in everything except this report.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Exponent-drop threshold for cancellation: result at least 2^20 smaller
/// than the larger operand (≈ 20 bits of magnitude lost).
pub const CANCEL_LOST_BITS: f64 = 20.0;

/// Relative shadow divergence required before a cancellation is flagged.
pub const CANCEL_DIVERGENCE: f64 = 0.01;

/// Relative error with the same near-zero fallback as
/// `prose_core::metrics::rel_err`: below `1e-30` in the shadow, compare
/// absolutely.
pub fn shadow_rel(primary: f64, shadow: f64) -> f64 {
    let d = (primary - shadow).abs();
    if shadow.abs() >= 1e-30 {
        d / shadow.abs()
    } else {
        d
    }
}

/// Running error statistics for one variable (or recorded metric key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct VarErr {
    pub max_rel: f64,
    pub final_rel: f64,
    pub stores: u64,
    /// Smallest primary value stored (certificate hull; `+inf` until a store).
    pub min_primary: f64,
    /// Largest primary value stored (certificate hull; `-inf` until a store).
    pub max_primary: f64,
}

impl Default for VarErr {
    fn default() -> Self {
        VarErr {
            max_rel: 0.0,
            final_rel: 0.0,
            stores: 0,
            min_primary: f64::INFINITY,
            max_primary: f64::NEG_INFINITY,
        }
    }
}

impl VarErr {
    pub fn update(&mut self, primary: f64, shadow: f64) {
        let r = shadow_rel(primary, shadow);
        if r > self.max_rel {
            self.max_rel = r;
        }
        self.final_rel = r;
        self.stores += 1;
        self.min_primary = self.min_primary.min(primary);
        self.max_primary = self.max_primary.max(primary);
    }
}

/// Scope key for per-variable stats: procedure index, or `GLOBAL_SCOPE` for
/// module-level slots.
pub(crate) const GLOBAL_SCOPE: usize = usize::MAX;

/// Mutable shadow-tracking state owned by the machine.
#[derive(Debug, Default)]
pub(crate) struct ShadowState {
    /// (scope, slot index) → error stats.
    pub vars: HashMap<(usize, usize), VarErr>,
    /// Recorded metric key → error stats (`prose_record*`).
    pub records: BTreeMap<String, VarErr>,
    pub cancellations: u64,
    pub worst_cancellation: Option<CancellationEvent>,
    pub nonfinite: Option<NonFiniteOrigin>,
}

/// One flagged catastrophic-cancellation site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CancellationEvent {
    pub proc: String,
    pub line: u32,
    /// Bits of magnitude lost: log2(max(|a|,|b|) / |result|).
    pub lost_bits: f64,
    /// Relative divergence between primary and shadow result.
    pub rel_err: f64,
}

/// Where the first non-finite value came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonFiniteOrigin {
    /// Coarse op family (`arith`, `math`, `store`, `elem-store`, `convert`,
    /// `reduce`) or `injected` for a `prose-faults` injection.
    pub op: String,
    pub proc: String,
    pub line: u32,
    /// True when the non-finite value was injected by the fault plan and is
    /// therefore *not* a genuine numerical event of the variant.
    pub injected: bool,
}

/// Per-variable shadow error, resolved to a display name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarShadow {
    /// `proc::var` for locals, `@global::var` for module-level slots.
    pub name: String,
    pub max_rel: f64,
    pub final_rel: f64,
    pub stores: u64,
    /// Smallest primary value observed at a store; `None` only in reports
    /// deserialized from journals written before primary-hull tracking.
    #[serde(default)]
    pub min_primary: Option<f64>,
    /// Largest primary value observed at a store (`None` = no data).
    #[serde(default)]
    pub max_primary: Option<f64>,
}

/// The shadow-execution report for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Per-variable stats, worst `max_rel` first.
    pub vars: Vec<VarShadow>,
    /// Per-recorded-metric-key stats (`prose_record*`), worst first.
    pub records: Vec<VarShadow>,
    /// Largest `max_rel` across all variables.
    pub worst_rel: f64,
    pub cancellations: u64,
    pub worst_cancellation: Option<CancellationEvent>,
    pub nonfinite: Option<NonFiniteOrigin>,
}

impl ShadowReport {
    /// The variable with the worst shadow error, if any FP store happened.
    pub fn worst_var(&self) -> Option<&VarShadow> {
        self.vars.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error_uses_absolute_fallback_near_zero() {
        assert_eq!(shadow_rel(2.0, 1.0), 1.0);
        assert_eq!(shadow_rel(1e-9, 0.0), 1e-9);
        assert!((shadow_rel(1.1, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn var_err_tracks_max_and_final() {
        let mut e = VarErr::default();
        e.update(1.5, 1.0); // rel 0.5
        e.update(1.1, 1.0); // rel 0.1
        assert_eq!(e.max_rel, 0.5);
        assert!((e.final_rel - 0.1).abs() < 1e-12);
        assert_eq!(e.stores, 2);
        assert_eq!(e.min_primary, 1.1);
        assert_eq!(e.max_primary, 1.5);
    }

    #[test]
    fn var_shadow_defaults_primary_hull_for_old_journals() {
        // Journals written before primary-hull tracking omit the fields;
        // they must deserialize to the "no data" sentinels.
        let old = r#"{"name":"fun::t1","max_rel":1e-6,"final_rel":1e-7,"stores":3}"#;
        let v: VarShadow = serde_json::from_str(old).unwrap();
        assert_eq!(v.min_primary, None);
        assert_eq!(v.max_primary, None);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = ShadowReport {
            vars: vec![VarShadow {
                name: "fun::t1".into(),
                max_rel: 1e-6,
                final_rel: 1e-7,
                stores: 3,
                min_primary: Some(0.25),
                max_primary: Some(1.5),
            }],
            records: vec![],
            worst_rel: 1e-6,
            cancellations: 1,
            worst_cancellation: Some(CancellationEvent {
                proc: "fun".into(),
                line: 7,
                lost_bits: 24.0,
                rel_err: 1.0,
            }),
            nonfinite: None,
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: ShadowReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
