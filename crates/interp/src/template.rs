//! Precision-parametric IR templates: the interpreter-side half of the
//! variant fast path.
//!
//! [`run_program`](crate::run_program) re-lowers the whole AST to IR for
//! every variant, even though precision appears in exactly one place in the
//! IR — [`SlotDecl::ty`]. An [`IrTemplate`] lowers all non-wrapper
//! procedures once from the *baseline* program and remembers which slots
//! are tunable FP variables. [`IrTemplate::instantiate`] then clones the
//! baseline IR, patches those slot types from the variant's
//! [`PrecisionMap`], lowers the (tiny) synthesized wrapper procedures
//! directly, and retargets call sites by replaying the transform-side
//! decision streams — no unparse, reparse, reanalysis, or full re-lower.
//!
//! Decision replay relies on an ordinal correspondence: the IR call-site
//! walk below visits user call sites in exactly the order the wrapper
//! rewrite visits them in the AST ([`crate::lower`] preserves expression
//! and statement order; dropped constructs — `prose_record` labels, the
//! multi-item `allocate` grouping — contain no call sites on either side).
//! The walk is validated at instantiation time: a count mismatch is an
//! error, never a silent mispatch.
//!
//! Wrapper procedures differ from the faithful path only in their procedure
//! *ids* (appended after `@main` instead of interleaved by re-analysis
//! order), which nothing observable depends on: records, timers, op counts,
//! and cycle totals are all keyed or summed by name.

use crate::ir::{IArg, IDim, IExpr, ILValue, IStmt, ProgramIR, STy, SlotDecl};
use crate::lower::{lower_program_with_maps, lower_wrapper_procedure, wrapper_lowerer, Lowerer};
use prose_fortran::ast::Procedure;
use prose_fortran::error::{FortranError, Result};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{FpVarId, ProgramIndex, ScopeId, ScopeKind};
use prose_fortran::Program;
use std::collections::{HashMap, HashSet};

/// Where a tunable FP slot lives in the baseline IR.
enum FpSlotLoc {
    Global(usize),
    /// `(procedure id, slot index)`.
    Proc(usize, usize),
}

/// A baseline lowering plus the recipe for specializing it per variant.
pub struct IrTemplate<'a> {
    index: &'a ProgramIndex,
    base: ProgramIR,
    /// Slots whose `STy::Fp(_)` is resolved from the precision map at
    /// instantiation — exactly the declarations `apply_precision` rewrites.
    fp_slots: Vec<(FpSlotLoc, FpVarId)>,
    /// Lowering context for synthesized wrappers, sharing the baseline's
    /// global slot numbering and procedure ids.
    lw: Lowerer<'a>,
}

impl<'a> IrTemplate<'a> {
    /// Lower the baseline program once and record its tunable FP slots.
    pub fn new(
        program: &'a Program,
        index: &'a ProgramIndex,
        inline_max_stmts: usize,
    ) -> Result<Self> {
        let (base, global_map, proc_ids) =
            lower_program_with_maps(program, index, &HashSet::new(), inline_max_stmts)?;

        let mut fp_slots: Vec<(FpSlotLoc, FpVarId)> = Vec::new();
        for ((scope, name), idx) in &global_map {
            if matches!(base.globals[*idx].ty, STy::Fp(_)) {
                if let Some(id) = index.fp_var_id(*scope, name) {
                    fp_slots.push((FpSlotLoc::Global(*idx), id));
                }
            }
        }
        let main_scope = (0..index.scope_count())
            .map(ScopeId)
            .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
            .expect("main scope");
        for (pid, proc) in base.procs.iter().enumerate() {
            let scope = if &*proc.name == "@main" {
                main_scope
            } else {
                index.scope_of_procedure(&proc.name).expect("proc indexed")
            };
            for (sid, slot) in proc.slots.iter().enumerate() {
                if matches!(slot.ty, STy::Fp(_)) {
                    if let Some(id) = index.fp_var_id(scope, &slot.name) {
                        fp_slots.push((FpSlotLoc::Proc(pid, sid), id));
                    }
                }
            }
        }

        let lw = wrapper_lowerer(index, &base, global_map, proc_ids);
        Ok(IrTemplate {
            index,
            base,
            fp_slots,
            lw,
        })
    }

    /// The baseline lowering (identity-map variant) this template patches.
    pub fn base(&self) -> &ProgramIR {
        &self.base
    }

    /// Build one variant's IR: clone the baseline, resolve FP slot types
    /// from `map`, lower the synthesized `wrappers` (`(callee, wrapper
    /// AST)` pairs), and retarget call sites per the `decisions` streams
    /// (keyed by caller procedure name, `"@main"` for the main body; one
    /// entry per user call site in walk order).
    pub fn instantiate(
        &self,
        map: &PrecisionMap,
        wrappers: &[(String, Procedure)],
        decisions: &HashMap<String, Vec<Option<String>>>,
    ) -> Result<ProgramIR> {
        let mut ir = self.base.clone();
        for (loc, id) in &self.fp_slots {
            let slot: &mut SlotDecl = match loc {
                FpSlotLoc::Global(i) => &mut ir.globals[*i],
                FpSlotLoc::Proc(p, s) => &mut ir.procs[*p].slots[*s],
            };
            slot.ty = STy::Fp(map.get(*id));
        }

        let mut wrapper_ids: HashMap<String, usize> = HashMap::with_capacity(wrappers.len());
        for (callee, proc) in wrappers {
            let callee_scope = self.index.scope_of_procedure(callee).ok_or_else(|| {
                FortranError::sema(0, format!("unknown wrapped callee `{callee}`"))
            })?;
            let lowered = lower_wrapper_procedure(&self.lw, proc, callee_scope)?;
            wrapper_ids.insert(proc.name.clone(), ir.procs.len());
            ir.procs.push(lowered);
        }

        for pid in 0..self.base.procs.len() {
            let Some(ds) = decisions.get(&*ir.procs[pid].name) else {
                continue;
            };
            let mut patcher = SitePatcher {
                ds,
                next: 0,
                wrapper_ids: &wrapper_ids,
            };
            patcher.walk_stmts(&mut ir.procs[pid].body)?;
            if patcher.next != ds.len() {
                return Err(FortranError::sema(
                    0,
                    format!(
                        "fast path desync in `{}`: {} decisions but {} IR call sites",
                        ir.procs[pid].name,
                        ds.len(),
                        patcher.next
                    ),
                ));
            }
        }
        Ok(ir)
    }
}

/// Replays one procedure's decision stream over its IR call sites, visiting
/// them in the shared AST/IR walk order.
struct SitePatcher<'a> {
    ds: &'a [Option<String>],
    next: usize,
    wrapper_ids: &'a HashMap<String, usize>,
}

impl SitePatcher<'_> {
    fn site(&mut self, proc: &mut usize) -> Result<()> {
        let d = self.ds.get(self.next).ok_or_else(|| {
            FortranError::sema(0, "fast path desync: more IR call sites than decisions")
        })?;
        self.next += 1;
        if let Some(w) = d {
            *proc = *self
                .wrapper_ids
                .get(w)
                .ok_or_else(|| FortranError::sema(0, format!("unplanned wrapper `{w}`")))?;
        }
        Ok(())
    }

    fn walk_stmts(&mut self, body: &mut [IStmt]) -> Result<()> {
        for s in body.iter_mut() {
            self.walk_stmt(s)?;
        }
        Ok(())
    }

    fn walk_stmt(&mut self, s: &mut IStmt) -> Result<()> {
        match s {
            IStmt::AssignScalar { value, .. } | IStmt::AssignBroadcast { value, .. } => {
                self.walk_expr(value)
            }
            IStmt::AssignElem { indices, value, .. } => {
                for ix in indices.iter_mut() {
                    self.walk_expr(ix)?;
                }
                self.walk_expr(value)
            }
            IStmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms.iter_mut() {
                    self.walk_expr(cond)?;
                    self.walk_stmts(body)?;
                }
                self.walk_stmts(else_body)
            }
            IStmt::Do {
                start,
                end,
                step,
                body,
                ..
            } => {
                self.walk_expr(start)?;
                self.walk_expr(end)?;
                if let Some(st) = step {
                    self.walk_expr(st)?;
                }
                self.walk_stmts(body)
            }
            IStmt::DoWhile { cond, body, .. } => {
                self.walk_expr(cond)?;
                self.walk_stmts(body)
            }
            IStmt::CallSub { proc, args, .. } => {
                for a in args.iter_mut() {
                    self.walk_arg(a)?;
                }
                self.site(proc)
            }
            IStmt::CallIntrinsicSub { args, .. } => {
                for a in args.iter_mut() {
                    self.walk_arg(a)?;
                }
                Ok(())
            }
            IStmt::Print { items, .. } => {
                for e in items.iter_mut() {
                    self.walk_expr(e)?;
                }
                Ok(())
            }
            IStmt::Allocate { dims, .. } => {
                for d in dims.iter_mut() {
                    if let IDim::Explicit { lower, upper } = d {
                        if let Some(lo) = lower {
                            self.walk_expr(lo)?;
                        }
                        self.walk_expr(upper)?;
                    }
                }
                Ok(())
            }
            IStmt::AssignArrayCopy { .. }
            | IStmt::Return
            | IStmt::Exit
            | IStmt::Cycle
            | IStmt::Stop { .. }
            | IStmt::Deallocate { .. } => Ok(()),
        }
    }

    fn walk_expr(&mut self, e: &mut IExpr) -> Result<()> {
        match e {
            IExpr::CallFun { proc, args } => {
                for a in args.iter_mut() {
                    self.walk_arg(a)?;
                }
                self.site(proc)
            }
            IExpr::Intrinsic { args, .. } => {
                for a in args.iter_mut() {
                    self.walk_expr(a)?;
                }
                Ok(())
            }
            IExpr::SizeOf { dim, .. } => {
                if let Some(d) = dim {
                    self.walk_expr(d)?;
                }
                Ok(())
            }
            IExpr::LoadElem { indices, .. } => {
                for ix in indices.iter_mut() {
                    self.walk_expr(ix)?;
                }
                Ok(())
            }
            IExpr::Bin { lhs, rhs, .. } => {
                self.walk_expr(lhs)?;
                self.walk_expr(rhs)
            }
            IExpr::Un { operand, .. } => self.walk_expr(operand),
            IExpr::RealLit(_)
            | IExpr::IntLit(_)
            | IExpr::BoolLit(_)
            | IExpr::StrLit(_)
            | IExpr::LoadScalar(_)
            | IExpr::Reduce { .. } => Ok(()),
        }
    }

    fn walk_arg(&mut self, a: &mut IArg) -> Result<()> {
        match a {
            IArg::Value(e) => self.walk_expr(e),
            IArg::ScalarRef(ILValue::Elem { indices, .. }) => {
                for ix in indices.iter_mut() {
                    self.walk_expr(ix)?;
                }
                Ok(())
            }
            IArg::ScalarRef(ILValue::Scalar(_)) | IArg::ArrayRef(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::ast::FpPrecision;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
  real(kind=8) :: shared = 1.0d0
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i)) + shared
    end do
  end subroutine kernel
end module m
program main
  use m, only: kernel
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 0.25d0 * k
  end do
  call kernel(a, b, 8)
  call prose_record('b1', b(1))
end program main
"#;

    #[test]
    fn identity_instantiation_equals_baseline_types() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let t = IrTemplate::new(&p, &ix, 16).unwrap();
        let map = PrecisionMap::declared(&ix);
        let ir = t.instantiate(&map, &[], &HashMap::new()).unwrap();
        assert_eq!(ir.procs.len(), t.base().procs.len());
        for (a, b) in ir.procs.iter().zip(t.base().procs.iter()) {
            for (sa, sb) in a.slots.iter().zip(b.slots.iter()) {
                assert_eq!(sa.ty, sb.ty, "{}::{}", a.name, sa.name);
            }
        }
    }

    #[test]
    fn precision_map_patches_exactly_the_mapped_slots() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let t = IrTemplate::new(&p, &ix, 16).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        let flux = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        let ir = t.instantiate(&map, &[], &HashMap::new()).unwrap();
        let fid = ir.proc_index("flux").unwrap();
        let fp = &ir.procs[fid];
        let q = fp.slots.iter().find(|s| &*s.name == "q").unwrap();
        let f = fp.slots.iter().find(|s| &*s.name == "f").unwrap();
        assert_eq!(q.ty, STy::Fp(FpPrecision::Single));
        assert_eq!(f.ty, STy::Fp(FpPrecision::Double));
        // Globals patch too, and the template itself stays pristine.
        let g = ix.module_scope("m").unwrap();
        map.set(ix.fp_var_id(g, "shared").unwrap(), FpPrecision::Single);
        let ir2 = t.instantiate(&map, &[], &HashMap::new()).unwrap();
        assert_eq!(ir2.globals[0].ty, STy::Fp(FpPrecision::Single));
        assert_eq!(t.base().globals[0].ty, STy::Fp(FpPrecision::Double));
    }

    #[test]
    fn desynced_decision_stream_is_an_error_not_a_mispatch() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let t = IrTemplate::new(&p, &ix, 16).unwrap();
        let map = PrecisionMap::declared(&ix);
        let mut decisions: HashMap<String, Vec<Option<String>>> = HashMap::new();
        // kernel has exactly one call site; two decisions must fail loudly.
        decisions.insert("kernel".into(), vec![None, None]);
        let err = t.instantiate(&map, &[], &decisions).unwrap_err();
        assert!(err.to_string().contains("desync"), "{err}");
    }
}
