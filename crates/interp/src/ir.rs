//! The interpreter's lowered program representation.
//!
//! Lowering ([`crate::lower`]) resolves the Fortran name ambiguities once —
//! array vs. function reference, local vs. module variable, user procedure
//! vs. intrinsic — and attaches per-loop vectorization metadata, so the
//! execution engine never consults symbol tables.

use prose_analysis::vect::VectBlocker;
use prose_fortran::ast::{BinOp, FpPrecision, Intent, UnOp};
use std::sync::Arc;

/// A slot reference: procedure-local frame slot or module-level global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    Local(usize),
    Global(usize),
}

/// Declared type of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum STy {
    Fp(FpPrecision),
    Int,
    Bool,
    Str,
}

impl STy {
    pub fn fp(self) -> Option<FpPrecision> {
        match self {
            STy::Fp(p) => Some(p),
            _ => None,
        }
    }
}

/// One dimension bound pair in a declaration (lower defaults to 1).
#[derive(Debug, Clone)]
pub enum IDim {
    /// Explicit bounds; lower is `None` for a default of 1.
    Explicit { lower: Option<IExpr>, upper: IExpr },
    /// Deferred: sized by allocation or by the bound actual argument.
    Deferred,
}

/// Slot declaration inside a procedure or at module level.
#[derive(Debug, Clone)]
pub struct SlotDecl {
    pub name: Arc<str>,
    pub ty: STy,
    /// `None` for scalars.
    pub dims: Option<Vec<IDim>>,
    pub init: Option<IExpr>,
    pub allocatable: bool,
    pub intent: Option<Intent>,
    /// Named constant.
    pub is_const: bool,
    /// Dummy argument position when this slot is a parameter of its proc.
    pub is_dummy: bool,
}

/// Intrinsic functions by identity (resolved at lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrinsicFn {
    Abs,
    Sqrt,
    Exp,
    Log,
    Log10,
    Sin,
    Cos,
    Tan,
    Atan,
    Atan2,
    Tanh,
    Max,
    Min,
    Mod,
    Sign,
    Real(Option<FpPrecision>),
    Dble,
    Sngl,
    Int,
    Nint,
    Floor,
    Size,
    Sum,
    Maxval,
    Minval,
    Epsilon,
    Huge,
    Tiny,
    Isnan,
}

/// Intrinsic subroutines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntrinsicSub {
    ProseRecord,
    ProseRecordArray,
    MpiAllreduceSum,
    MpiAllreduceMax,
}

/// Lowered expressions.
#[derive(Debug, Clone)]
pub enum IExpr {
    /// Kind-generic real literal.
    RealLit(f64),
    IntLit(i64),
    BoolLit(bool),
    StrLit(Arc<str>),
    LoadScalar(SlotRef),
    LoadElem {
        slot: SlotRef,
        indices: Vec<IExpr>,
    },
    CallFun {
        proc: usize,
        args: Vec<IArg>,
    },
    Intrinsic {
        f: IntrinsicFn,
        args: Vec<IExpr>,
    },
    /// `size(array)` / `size(array, dim)` needs the slot, not its value.
    SizeOf {
        slot: SlotRef,
        dim: Option<Box<IExpr>>,
    },
    /// `sum/maxval/minval(array)` over a whole array.
    Reduce {
        f: IntrinsicFn,
        slot: SlotRef,
    },
    Bin {
        op: BinOp,
        lhs: Box<IExpr>,
        rhs: Box<IExpr>,
    },
    Un {
        op: UnOp,
        operand: Box<IExpr>,
    },
}

/// How an actual argument binds to a dummy.
#[derive(Debug, Clone)]
pub enum IArg {
    /// Expression value: copy-in only.
    Value(IExpr),
    /// Scalar variable or array element: copy-in / copy-out.
    ScalarRef(ILValue),
    /// Whole array: associated by reference.
    ArrayRef(SlotRef),
}

/// Assignment / writeback target.
#[derive(Debug, Clone)]
pub enum ILValue {
    Scalar(SlotRef),
    Elem { slot: SlotRef, indices: Vec<IExpr> },
}

/// Per-loop metadata computed at lowering.
#[derive(Debug, Clone)]
pub struct LoopMeta {
    /// Statically legal to vectorize (dependence-free, straight-line).
    pub vectorizable: bool,
    pub blocker: Option<VectBlocker>,
}

/// Lowered statements.
#[derive(Debug, Clone)]
pub enum IStmt {
    AssignScalar {
        slot: SlotRef,
        value: IExpr,
        line: u32,
    },
    AssignElem {
        slot: SlotRef,
        indices: Vec<IExpr>,
        value: IExpr,
        line: u32,
    },
    /// Whole-array assignment: broadcast a scalar over every element.
    AssignBroadcast {
        slot: SlotRef,
        value: IExpr,
        line: u32,
    },
    /// Whole-array copy `a = b` (element-wise, converting if kinds differ).
    AssignArrayCopy {
        dst: SlotRef,
        src: SlotRef,
        line: u32,
    },
    If {
        arms: Vec<(IExpr, Vec<IStmt>)>,
        else_body: Vec<IStmt>,
        line: u32,
    },
    Do {
        var: SlotRef,
        start: IExpr,
        end: IExpr,
        step: Option<IExpr>,
        body: Vec<IStmt>,
        meta: LoopMeta,
        line: u32,
    },
    DoWhile {
        cond: IExpr,
        body: Vec<IStmt>,
        line: u32,
    },
    CallSub {
        proc: usize,
        args: Vec<IArg>,
        line: u32,
    },
    CallIntrinsicSub {
        f: IntrinsicSub,
        name_arg: Option<Arc<str>>,
        args: Vec<IArg>,
        line: u32,
    },
    Return,
    Exit,
    Cycle,
    Print {
        items: Vec<IExpr>,
        line: u32,
    },
    Stop {
        code: Option<i64>,
        line: u32,
    },
    Allocate {
        slot: SlotRef,
        dims: Vec<IDim>,
        line: u32,
    },
    Deallocate {
        slots: Vec<SlotRef>,
        line: u32,
    },
}

/// A lowered procedure.
///
/// `Clone` exists for the variant fast path ([`crate::template`]): a
/// baseline `ProgramIR` is cloned per variant and patched in place.
#[derive(Debug, Clone)]
pub struct ProcIR {
    pub name: Arc<str>,
    pub is_function: bool,
    /// Slot index of the function result.
    pub result_slot: Option<usize>,
    /// Slot indices of the dummy arguments, in order.
    pub params: Vec<usize>,
    pub slots: Vec<SlotDecl>,
    pub body: Vec<IStmt>,
    /// Candidate for inlining: small leaf without loops. A wrapper is never
    /// an inline candidate (the conversion code defeats the inliner — the
    /// paper's Figure 6 `flux` observation).
    pub inlinable: bool,
    /// True when this procedure is a synthesized conversion wrapper.
    pub is_wrapper: bool,
}

/// A lowered program.
///
/// Shared (`&ProgramIR`) across rayon workers by the fast path, so every
/// payload type here is `Send + Sync` — interned strings are `Arc<str>`,
/// never `Rc<str>`.
#[derive(Debug, Clone)]
pub struct ProgramIR {
    pub procs: Vec<ProcIR>,
    /// Module-level and program-level variables.
    pub globals: Vec<SlotDecl>,
    /// Body of the main program (its locals live in `globals`... no:
    /// main gets its own pseudo-procedure at `main_proc`).
    pub main_proc: usize,
}

impl ProgramIR {
    pub fn proc_index(&self, name: &str) -> Option<usize> {
        self.procs.iter().position(|p| &*p.name == name)
    }
}
