//! Runtime values with explicit precision.
//!
//! Scalars track which precision they were computed in; real literals are
//! *kind-generic* ([`Num::Lit`]) and adopt the precision of whatever they
//! combine with, matching the kind-parameterized constants
//! (`1.0_wp`, `-fdefault-real-8` promotion) real model builds use — a
//! literal never forces a conversion.

use prose_fortran::ast::FpPrecision;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// A floating-point scalar carrying its precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fp {
    F32(f32),
    F64(f64),
}

impl Fp {
    pub fn precision(self) -> FpPrecision {
        match self {
            Fp::F32(_) => FpPrecision::Single,
            Fp::F64(_) => FpPrecision::Double,
        }
    }

    /// Widen/narrow to f64 for inspection (not a semantic conversion).
    pub fn as_f64(self) -> f64 {
        match self {
            Fp::F32(v) => v as f64,
            Fp::F64(v) => v,
        }
    }

    pub fn is_finite(self) -> bool {
        match self {
            Fp::F32(v) => v.is_finite(),
            Fp::F64(v) => v.is_finite(),
        }
    }

    pub fn is_nan(self) -> bool {
        match self {
            Fp::F32(v) => v.is_nan(),
            Fp::F64(v) => v.is_nan(),
        }
    }

    /// Convert to the given precision (the *semantic* conversion the cost
    /// model charges for when it crosses precisions).
    pub fn to_precision(self, p: FpPrecision) -> Fp {
        match (self, p) {
            (Fp::F32(v), FpPrecision::Double) => Fp::F64(v as f64),
            (Fp::F64(v), FpPrecision::Single) => Fp::F32(v as f32),
            (x, _) => x,
        }
    }

    pub fn zero(p: FpPrecision) -> Fp {
        match p {
            FpPrecision::Single => Fp::F32(0.0),
            FpPrecision::Double => Fp::F64(0.0),
        }
    }

    /// Build from an f64 value at the given precision.
    pub fn from_f64(v: f64, p: FpPrecision) -> Fp {
        match p {
            FpPrecision::Single => Fp::F32(v as f32),
            FpPrecision::Double => Fp::F64(v),
        }
    }
}

/// A numeric (or other) runtime value.
#[derive(Debug, Clone)]
pub enum Num {
    Int(i64),
    /// Kind-generic real literal (or pure-literal arithmetic result).
    Lit(f64),
    Fp(Fp),
    Bool(bool),
    /// Interned: shares the lowered IR's `Arc<str>` literals.
    Str(Arc<str>),
}

impl Num {
    /// Interpret as f64 for recording/metrics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Num::Int(v) => Some(*v as f64),
            Num::Lit(v) => Some(*v),
            Num::Fp(f) => Some(f.as_f64()),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Num::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Num::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The precision this value would contribute to an operation, if any.
    /// Literals and integers are kind-generic.
    pub fn fp_precision(&self) -> Option<FpPrecision> {
        match self {
            Num::Fp(f) => Some(f.precision()),
            _ => None,
        }
    }
}

/// Array payload: homogeneous, precision-tagged storage.
#[derive(Debug, Clone)]
pub enum ArrayData {
    F32(Vec<f32>),
    F64(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
}

impl ArrayData {
    pub fn len(&self) -> usize {
        match self {
            ArrayData::F32(v) => v.len(),
            ArrayData::F64(v) => v.len(),
            ArrayData::Int(v) => v.len(),
            ArrayData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn fp_precision(&self) -> Option<FpPrecision> {
        match self {
            ArrayData::F32(_) => Some(FpPrecision::Single),
            ArrayData::F64(_) => Some(FpPrecision::Double),
            _ => None,
        }
    }
}

/// A Fortran array: column-major storage with per-dimension bounds.
#[derive(Debug, Clone)]
pub struct ArrayVal {
    pub data: ArrayData,
    /// Inclusive (lower, upper) bounds per dimension.
    pub bounds: Vec<(i64, i64)>,
    /// fp64 shadow values, allocated only for FP arrays under shadow
    /// execution ([`crate::shadow`]); `None` in normal operation.
    pub shadow: Option<Vec<f64>>,
}

impl ArrayVal {
    pub fn new_fp(p: FpPrecision, bounds: Vec<(i64, i64)>) -> ArrayVal {
        let n = total_len(&bounds);
        let data = match p {
            FpPrecision::Single => ArrayData::F32(vec![0.0; n]),
            FpPrecision::Double => ArrayData::F64(vec![0.0; n]),
        };
        ArrayVal {
            data,
            bounds,
            shadow: None,
        }
    }

    pub fn new_int(bounds: Vec<(i64, i64)>) -> ArrayVal {
        let n = total_len(&bounds);
        ArrayVal {
            data: ArrayData::Int(vec![0; n]),
            bounds,
            shadow: None,
        }
    }

    pub fn new_bool(bounds: Vec<(i64, i64)>) -> ArrayVal {
        let n = total_len(&bounds);
        ArrayVal {
            data: ArrayData::Bool(vec![false; n]),
            bounds,
            shadow: None,
        }
    }

    /// Allocate the fp64 shadow plane (shadow execution, FP arrays only).
    pub fn with_shadow(mut self) -> ArrayVal {
        if self.data.fp_precision().is_some() {
            self.shadow = Some(vec![0.0; self.data.len()]);
        }
        self
    }

    /// Shadow value at `off`, falling back to the primary value widened to
    /// f64 when no shadow plane exists.
    pub fn shadow_at(&self, off: usize) -> f64 {
        match &self.shadow {
            Some(s) => s[off],
            None => match &self.data {
                ArrayData::F32(v) => v[off] as f64,
                ArrayData::F64(v) => v[off],
                ArrayData::Int(v) => v[off] as f64,
                ArrayData::Bool(v) => f64::from(u8::from(v[off])),
            },
        }
    }

    /// Set the shadow value at `off` (no-op without a shadow plane).
    pub fn shadow_set(&mut self, off: usize, v: f64) {
        if let Some(s) = &mut self.shadow {
            s[off] = v;
        }
    }

    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `d` (1-based).
    pub fn extent(&self, d: usize) -> i64 {
        let (lo, hi) = self.bounds[d - 1];
        (hi - lo + 1).max(0)
    }

    /// Column-major linear offset for the given subscripts, or `None` when
    /// out of bounds.
    pub fn offset(&self, subs: &[i64]) -> Option<usize> {
        if subs.len() != self.bounds.len() {
            return None;
        }
        let mut off: usize = 0;
        let mut stride: usize = 1;
        for (s, (lo, hi)) in subs.iter().zip(&self.bounds) {
            if s < lo || s > hi {
                return None;
            }
            off += (s - lo) as usize * stride;
            stride *= (hi - lo + 1) as usize;
        }
        Some(off)
    }

    pub fn get_fp(&self, off: usize) -> Fp {
        match &self.data {
            ArrayData::F32(v) => Fp::F32(v[off]),
            ArrayData::F64(v) => Fp::F64(v[off]),
            _ => panic!("get_fp on non-FP array"),
        }
    }

    pub fn set_fp(&mut self, off: usize, value: Fp) {
        match &mut self.data {
            ArrayData::F32(v) => {
                v[off] = match value {
                    Fp::F32(x) => x,
                    Fp::F64(x) => x as f32,
                }
            }
            ArrayData::F64(v) => {
                v[off] = match value {
                    Fp::F64(x) => x,
                    Fp::F32(x) => x as f64,
                }
            }
            _ => panic!("set_fp on non-FP array"),
        }
    }

    /// Snapshot the contents widened to f64 (for recording).
    pub fn snapshot_f64(&self) -> Vec<f64> {
        match &self.data {
            ArrayData::F32(v) => v.iter().map(|x| *x as f64).collect(),
            ArrayData::F64(v) => v.clone(),
            ArrayData::Int(v) => v.iter().map(|x| *x as f64).collect(),
            ArrayData::Bool(v) => v.iter().map(|x| f64::from(u8::from(*x))).collect(),
        }
    }
}

pub fn total_len(bounds: &[(i64, i64)]) -> usize {
    bounds
        .iter()
        .map(|(lo, hi)| ((hi - lo + 1).max(0)) as usize)
        .product()
}

/// Shared, mutable array handle (Fortran argument association aliasing).
pub type ArrayRef = Rc<RefCell<ArrayVal>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_precision_and_conversion() {
        let x = Fp::F64(0.1);
        assert_eq!(x.precision(), FpPrecision::Double);
        let y = x.to_precision(FpPrecision::Single);
        assert_eq!(y.precision(), FpPrecision::Single);
        // Rounding really happened.
        assert_ne!(y.as_f64(), 0.1);
        assert_eq!(y.as_f64(), 0.1f32 as f64);
        // Idempotent when already at target precision.
        assert_eq!(y.to_precision(FpPrecision::Single), y);
    }

    #[test]
    fn fp_finite_checks() {
        assert!(Fp::F32(1.0).is_finite());
        assert!(!Fp::F64(f64::INFINITY).is_finite());
        assert!(Fp::F32(f32::NAN).is_nan());
    }

    #[test]
    fn array_offsets_are_column_major_with_bounds() {
        let a = ArrayVal::new_fp(FpPrecision::Double, vec![(1, 3), (0, 2)]);
        assert_eq!(a.len(), 9);
        assert_eq!(a.offset(&[1, 0]), Some(0));
        assert_eq!(a.offset(&[2, 0]), Some(1)); // first dim is contiguous
        assert_eq!(a.offset(&[1, 1]), Some(3));
        assert_eq!(a.offset(&[3, 2]), Some(8));
        assert_eq!(a.offset(&[4, 0]), None);
        assert_eq!(a.offset(&[0, 0]), None);
        assert_eq!(a.offset(&[1]), None);
    }

    #[test]
    fn array_set_get_rounds_to_storage_precision() {
        let mut a = ArrayVal::new_fp(FpPrecision::Single, vec![(1, 2)]);
        a.set_fp(0, Fp::F64(0.1));
        let got = a.get_fp(0);
        assert_eq!(got, Fp::F32(0.1f32));
    }

    #[test]
    fn extent_and_snapshot() {
        let mut a = ArrayVal::new_fp(FpPrecision::Double, vec![(0, 4)]);
        assert_eq!(a.extent(1), 5);
        a.set_fp(2, Fp::F64(7.0));
        assert_eq!(a.snapshot_f64(), vec![0.0, 0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn num_accessors() {
        assert_eq!(Num::Int(3).as_f64(), Some(3.0));
        assert_eq!(Num::Lit(2.5).as_f64(), Some(2.5));
        assert_eq!(Num::Fp(Fp::F32(1.5)).as_f64(), Some(1.5));
        assert_eq!(Num::Bool(true).as_bool(), Some(true));
        assert_eq!(Num::Int(3).as_int(), Some(3));
        assert_eq!(Num::Lit(1.0).fp_precision(), None);
        assert_eq!(
            Num::Fp(Fp::F64(1.0)).fp_precision(),
            Some(FpPrecision::Double)
        );
    }

    #[test]
    fn zero_length_dimension_yields_empty_array() {
        let a = ArrayVal::new_fp(FpPrecision::Double, vec![(1, 0)]);
        assert!(a.is_empty());
        assert_eq!(a.extent(1), 0);
    }
}
