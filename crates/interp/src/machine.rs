//! The execution engine: a frame-based tree walker over the IR that
//! simultaneously computes real mixed-precision values and charges the cost
//! model.
//!
//! Semantics notes (documented substitutions for full Fortran):
//!
//! * Scalars and arrays are zero-initialized (the `-init=zero` compiler
//!   behaviour); model sources still initialize explicitly.
//! * Scalar arguments use copy-in/copy-out (a standard-conforming argument
//!   association); arrays are associated by reference and adopt the
//!   actual's bounds.
//! * A precision-mismatched argument association is a runtime error — in
//!   real Fortran it would not compile, and the transformer's wrappers
//!   guarantee it never happens for generated variants.
//! * Any non-finite FP result aborts the run (the model-crash analog the
//!   paper reports as "runtime error" variants), as does `stop` with a
//!   non-zero code.

use crate::cost::{CostParams, LoopCtx, OpClass};
use crate::ir::*;
use crate::shadow::{
    shadow_rel, CancellationEvent, NonFiniteOrigin, ShadowReport, ShadowState, VarShadow,
    CANCEL_DIVERGENCE, CANCEL_LOST_BITS, GLOBAL_SCOPE,
};
use crate::timers::Timers;
use crate::value::{ArrayRef, ArrayVal, Fp, Num};
use prose_fortran::ast::{BinOp, FpPrecision, UnOp};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Aggregate operation counters for one run. Pure observability: the
/// counters never feed back into the cost model, they exist so the trial
/// journal can explain *where* a variant's simulated cycles came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// FP arithmetic charged at single precision.
    pub fp32_ops: u64,
    /// FP arithmetic charged at double precision.
    pub fp64_ops: u64,
    /// Array/memory traffic charges.
    pub mem_ops: u64,
    /// Scalar precision conversions (vectorizable `vcvt` kind).
    pub casts: u64,
    /// Converting stores — the kind that demotes a loop to scalar cost.
    pub cast_stores: u64,
    /// Non-inlined procedure calls that paid call + timer overhead.
    pub timed_calls: u64,
    /// Loop-control charges (`do` / `do while` iterations).
    pub loop_iters: u64,
    /// `MPI_ALLREDUCE` collectives.
    pub allreduces: u64,
}

impl OpCounts {
    /// Total counted events (not cycles — see [`crate::cost`] for those).
    pub fn total(&self) -> u64 {
        self.fp32_ops
            + self.fp64_ops
            + self.mem_ops
            + self.casts
            + self.cast_stores
            + self.timed_calls
            + self.loop_iters
            + self.allreduces
    }
}

/// Why a run aborted.
///
/// `proc` fields are interned: they share the lowered IR's procedure-name
/// `Arc<str>`s instead of allocating a fresh `String` per error.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A floating-point operation produced NaN/Inf.
    NonFinite { proc: Arc<str>, line: u32 },
    /// `stop <code>` with a non-zero code (model guard tripped).
    Stop { code: i64 },
    /// Simulated time exceeded the budget (3× baseline in searches).
    Timeout { budget: f64 },
    /// Wall-clock deadline exceeded ([`crate::run::RunConfig::deadline`]).
    /// Unlike [`RunError::Timeout`] this is real elapsed time, not modeled
    /// cycles: it is the only thing that can kill a stalled event loop.
    Deadline { ms: u64 },
    /// Event-count safety valve tripped (runaway loop).
    EventLimit,
    /// Array subscript out of bounds.
    OutOfBounds { proc: Arc<str>, line: u32 },
    /// Use of an unallocated allocatable.
    Unallocated { proc: Arc<str>, line: u32 },
    /// Type/kind/shape violation (e.g. mismatched argument association).
    Invalid {
        proc: Arc<str>,
        line: u32,
        msg: String,
    },
    /// Integer division by zero.
    DivByZero { proc: Arc<str>, line: u32 },
    /// Lowering failed (malformed program).
    Lower(String),
    /// Call stack exceeded the recursion guard.
    StackOverflow,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NonFinite { proc, line } => {
                write!(f, "non-finite FP result in `{proc}` at line {line}")
            }
            RunError::Stop { code } => write!(f, "stop {code}"),
            RunError::Timeout { budget } => write!(f, "timeout (budget {budget} cycles)"),
            RunError::Deadline { ms } => write!(f, "wall-clock deadline exceeded ({ms} ms)"),
            RunError::EventLimit => write!(f, "event limit exceeded"),
            RunError::OutOfBounds { proc, line } => {
                write!(f, "subscript out of bounds in `{proc}` at line {line}")
            }
            RunError::Unallocated { proc, line } => {
                write!(f, "unallocated array used in `{proc}` at line {line}")
            }
            RunError::Invalid { proc, line, msg } => {
                write!(f, "invalid operation in `{proc}` at line {line}: {msg}")
            }
            RunError::DivByZero { proc, line } => {
                write!(f, "integer division by zero in `{proc}` at line {line}")
            }
            RunError::Lower(msg) => write!(f, "lowering failed: {msg}"),
            RunError::StackOverflow => write!(f, "call stack exceeded recursion guard"),
        }
    }
}

impl std::error::Error for RunError {}

/// Output recorded by `prose_record*` plus captured `print` lines.
///
/// `PartialEq` is bitwise on the recorded floats — the comparison the
/// fast-path cross-check uses to assert the two variant paths agree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecords {
    pub scalars: BTreeMap<String, Vec<f64>>,
    pub arrays: BTreeMap<String, Vec<Vec<f64>>>,
    pub stdout: Vec<String>,
}

/// Runtime slot contents.
#[derive(Debug, Clone)]
pub enum Slot {
    Int(i64),
    Fp(Fp),
    Bool(bool),
    Str(Arc<str>),
    Array(ArrayRef),
    Unallocated,
}

/// One activation's slots plus, under shadow execution, a parallel fp64
/// shadow value per slot. Indexing (`frame[i]`) reaches the primary slots;
/// the shadow plane is empty (and every accessor a no-op) when shadow
/// execution is off, so the normal path pays nothing.
#[derive(Debug, Default)]
pub struct Frame {
    pub slots: Vec<Slot>,
    sh: Vec<f64>,
}

impl Frame {
    pub fn new() -> Frame {
        Frame::default()
    }

    fn for_decls(decls: &[SlotDecl], shadow: bool) -> Frame {
        let slots: Vec<Slot> = decls.iter().map(default_slot).collect();
        let sh = if shadow {
            vec![0.0; slots.len()]
        } else {
            Vec::new()
        };
        Frame { slots, sh }
    }

    fn sh_get(&self, i: usize) -> f64 {
        self.sh.get(i).copied().unwrap_or(0.0)
    }

    fn sh_set(&mut self, i: usize, v: f64) {
        if let Some(s) = self.sh.get_mut(i) {
            *s = v;
        }
    }
}

impl std::ops::Index<usize> for Frame {
    type Output = Slot;
    fn index(&self, i: usize) -> &Slot {
        &self.slots[i]
    }
}

impl std::ops::IndexMut<usize> for Frame {
    fn index_mut(&mut self, i: usize) -> &mut Slot {
        &mut self.slots[i]
    }
}

/// Control flow signal from statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    Normal,
    ExitLoop,
    CycleLoop,
    Return,
    /// `stop` / `stop 0`: graceful termination.
    Halt,
}

pub struct Machine<'ir> {
    pub ir: &'ir ProgramIR,
    pub params: CostParams,
    pub globals: Frame,
    pub records: RunRecords,
    /// Exclusive cycles per procedure id (folded into [`Timers`] at the end;
    /// vector indexing keeps the per-operation charge path allocation- and
    /// hash-free).
    proc_cycles: Vec<f64>,
    proc_calls: Vec<u64>,
    total: f64,
    loop_stack: Vec<LoopCtx>,
    proc_stack: Vec<usize>,
    /// Source line of the statement currently executing (diagnostics).
    cur_line: u32,
    pub budget: f64,
    pub max_events: u64,
    pub events: u64,
    ops: OpCounts,
    /// Fault-injection plan for this run ([`prose_faults`]); `None` in
    /// normal operation.
    pub fault: Option<prose_faults::InjectedFault>,
    /// Wall-clock instant after which the run aborts with
    /// [`RunError::Deadline`]. Checked cooperatively every
    /// [`DEADLINE_CHECK_INTERVAL`] events; the check reads the clock and
    /// changes nothing unless it fires, so modeled cycles, numerics, and
    /// event counts are bit-identical whether or not a deadline is armed.
    pub deadline_at: Option<std::time::Instant>,
    /// Configured deadline in milliseconds (diagnostics only).
    pub deadline_ms: u64,
    /// Shadow execution enabled ([`crate::shadow`]).
    sh_on: bool,
    /// Shadow of the most recently evaluated expression. The discipline:
    /// every `eval` arm leaves the shadow of its result here, and consumers
    /// (stores, argument binding, recording) read it before the next `eval`.
    sh_reg: f64,
    shadow: Option<Box<ShadowState>>,
}

/// Events between cooperative wall-clock deadline checks (power of two:
/// the check divides into `bump_event` with a mask). Coarse enough that
/// an un-armed run never pays a clock read per event; fine enough that a
/// deadline is noticed within microseconds of real work.
pub const DEADLINE_CHECK_INTERVAL: u64 = 1024;

type R<T> = Result<T, RunError>;

impl<'ir> Machine<'ir> {
    pub fn new(ir: &'ir ProgramIR, params: CostParams, budget: f64, max_events: u64) -> Self {
        let nprocs = ir.procs.len();
        Machine {
            ir,
            params,
            globals: Frame::new(),
            records: RunRecords::default(),
            proc_cycles: vec![0.0; nprocs],
            proc_calls: vec![0; nprocs],
            total: 0.0,
            loop_stack: Vec::new(),
            proc_stack: Vec::new(),
            cur_line: 0,
            budget,
            max_events,
            events: 0,
            ops: OpCounts::default(),
            fault: None,
            deadline_at: None,
            deadline_ms: 0,
            sh_on: false,
            sh_reg: 0.0,
            shadow: None,
        }
    }

    /// Turn on shadow execution. Must be called before [`Machine::run`].
    pub fn enable_shadow(&mut self) {
        self.sh_on = true;
        self.shadow = Some(Box::default());
    }

    /// Initialize globals and execute the main program.
    pub fn run(&mut self) -> R<()> {
        self.init_globals()?;
        let main = self.ir.main_proc;
        let result = match self.call_proc(main, &[], &mut Frame::new()) {
            Ok(_) => Ok(()),
            // `stop` / `stop 0` unwinds as a sentinel: clean termination.
            Err(RunError::Stop { code: 0 }) => Ok(()),
            Err(e) => Err(e),
        };
        // A planned fault whose event threshold exceeded the run length
        // still fires — at termination — so injection is deterministic
        // regardless of variant size.
        if result.is_ok() && self.fault.is_some() {
            return Err(self.fire_fault());
        }
        result
    }

    /// Abort the run with the armed injected fault.
    /// [`prose_faults::InjectedFault::Abort`] does not return: it panics
    /// with an [`prose_faults::InjectedAbort`] payload for the evaluator's
    /// `catch_unwind` containment to classify.
    fn fire_fault(&mut self) -> RunError {
        match self.fault.take().expect("fire_fault with no fault armed") {
            prose_faults::InjectedFault::NonFinite { .. } => {
                // Provenance: this NaN never traversed real arithmetic —
                // attribute it to the injection, not to the variant.
                let proc = self.cur_proc_name();
                let line = self.cur_line;
                self.note_nonfinite("injected", &proc, line, true);
                RunError::NonFinite { proc, line }
            }
            prose_faults::InjectedFault::Timeout { .. } => RunError::Timeout {
                budget: self.budget,
            },
            prose_faults::InjectedFault::Abort { after_events } => {
                std::panic::panic_any(prose_faults::InjectedAbort {
                    after_events: after_events.min(self.events),
                })
            }
            prose_faults::InjectedFault::Hang { .. } => self.stall(),
        }
    }

    /// Simulate a hung event loop: burn wall-clock time without advancing
    /// any modeled state. No budget or event limit applies here — by
    /// design, only an armed wall-clock deadline terminates the stall.
    fn stall(&mut self) -> RunError {
        loop {
            if let Some(at) = self.deadline_at {
                if std::time::Instant::now() >= at {
                    return RunError::Deadline {
                        ms: self.deadline_ms,
                    };
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Consume the machine, producing the timer table, records, and
    /// operation counters.
    pub fn finish(self) -> (Timers, RunRecords, f64, u64, OpCounts) {
        let mut timers = Timers::new();
        for (i, proc) in self.ir.procs.iter().enumerate() {
            if self.proc_calls[i] > 0 || self.proc_cycles[i] > 0.0 {
                timers.charge(&proc.name, self.proc_cycles[i]);
                timers.add_calls(&proc.name, self.proc_calls[i]);
            }
        }
        (timers, self.records, self.total, self.events, self.ops)
    }

    // ---- context helpers -------------------------------------------------

    fn cur_proc_name(&self) -> Arc<str> {
        self.proc_stack
            .last()
            .map(|p| Arc::clone(&self.ir.procs[*p].name))
            .unwrap_or_else(|| Arc::from("@init"))
    }

    fn cur_proc(&self) -> usize {
        self.proc_stack.last().copied().unwrap_or(self.ir.main_proc)
    }

    fn err_invalid(&self, line: u32, msg: impl Into<String>) -> RunError {
        let line = if line == 0 { self.cur_line } else { line };
        RunError::Invalid {
            proc: self.cur_proc_name(),
            line,
            msg: msg.into(),
        }
    }

    /// Prefer the current statement's line for errors raised from
    /// expression contexts (which carry no spans).
    fn at_line(&self, line: u32) -> u32 {
        if line == 0 {
            self.cur_line
        } else {
            line
        }
    }

    // ---- shadow execution ------------------------------------------------
    //
    // None of these charge cycles, count ops, or bump events: shadow-on and
    // shadow-off runs are bit-identical in everything but the report.

    /// Shadow value of a scalar slot: the stored fp64 shadow for FP slots,
    /// the primary value widened to f64 for everything else (integers,
    /// logicals follow the primary by construction).
    fn load_shadow(&self, r: SlotRef, frame: &Frame) -> f64 {
        let (slot, sh) = match r {
            SlotRef::Local(i) => (&frame.slots[i], frame.sh_get(i)),
            SlotRef::Global(i) => (&self.globals.slots[i], self.globals.sh_get(i)),
        };
        match slot {
            Slot::Fp(_) => sh,
            Slot::Int(i) => *i as f64,
            Slot::Bool(b) => f64::from(u8::from(*b)),
            _ => 0.0,
        }
    }

    /// After a scalar slot store: persist the value's shadow (from the
    /// register) and fold the divergence into the per-variable stats. Non-FP
    /// slots snap their shadow to the primary.
    fn store_scalar_shadow(&mut self, r: SlotRef, frame: &mut Frame) {
        if !self.sh_on {
            return;
        }
        let (prim, is_fp) = match self.get_slot(r, frame) {
            Slot::Fp(f) => (f.as_f64(), true),
            Slot::Int(i) => (*i as f64, false),
            Slot::Bool(b) => (f64::from(u8::from(*b)), false),
            _ => return,
        };
        let sh = if is_fp { self.sh_reg } else { prim };
        match r {
            SlotRef::Local(i) => frame.sh_set(i, sh),
            SlotRef::Global(i) => self.globals.sh_set(i, sh),
        }
        if is_fp {
            self.note_var(r, prim, sh);
        }
    }

    /// Fold one store's divergence into the (scope, slot) stats.
    fn note_var(&mut self, r: SlotRef, prim: f64, sh: f64) {
        let key = match r {
            SlotRef::Local(i) => (self.cur_proc(), i),
            SlotRef::Global(i) => (GLOBAL_SCOPE, i),
        };
        if let Some(st) = &mut self.shadow {
            st.vars.entry(key).or_default().update(prim, sh);
        }
    }

    /// Shadow of a binary op's result; also the cancellation detector.
    fn shadow_bin(
        &mut self,
        op: BinOp,
        pa: Option<f64>,
        pb: Option<f64>,
        ash: f64,
        bsh: f64,
        r: &Num,
    ) {
        if op.is_logical() || op.is_comparison() {
            self.sh_reg = match r {
                Num::Bool(b) => f64::from(u8::from(*b)),
                _ => 0.0,
            };
            return;
        }
        if let Num::Int(i) = r {
            // Integer arithmetic: shadow snaps to the primary.
            self.sh_reg = *i as f64;
            return;
        }
        let sh = apply_f64(op, ash, bsh);
        self.sh_reg = sh;
        // Catastrophic cancellation: only meaningful for runtime FP add/sub
        // (literal folds are compile-time and precision-independent).
        if matches!(op, BinOp::Add | BinOp::Sub) && matches!(r, Num::Fp(_)) {
            if let (Some(x), Some(y), Some(pr)) = (pa, pb, r.as_f64()) {
                self.note_cancellation(x, y, pr, sh);
            }
        }
    }

    fn note_cancellation(&mut self, x: f64, y: f64, prim: f64, sh: f64) {
        let m = x.abs().max(y.abs());
        if m <= 0.0 || !prim.is_finite() {
            return;
        }
        // Exponent drop: result at least CANCEL_LOST_BITS bits below the
        // larger operand.
        if prim.abs() >= m * CANCEL_LOST_BITS.exp2().recip() {
            return;
        }
        let rel = shadow_rel(prim, sh);
        if rel < CANCEL_DIVERGENCE {
            // Benign cancellation: the shadow cancelled the same way.
            return;
        }
        let lost_bits = if prim == 0.0 {
            f64::from(f64::MANTISSA_DIGITS)
        } else {
            (m / prim.abs()).log2()
        };
        let ev = CancellationEvent {
            proc: self.cur_proc_name().to_string(),
            line: self.cur_line,
            lost_bits,
            rel_err: rel,
        };
        if let Some(st) = &mut self.shadow {
            st.cancellations += 1;
            let worse = st
                .worst_cancellation
                .as_ref()
                .is_none_or(|w| ev.rel_err > w.rel_err);
            if worse {
                st.worst_cancellation = Some(ev);
            }
        }
    }

    /// Record provenance for the first non-finite value and build the error.
    fn nonfinite_at(&mut self, line: u32, op: &'static str) -> RunError {
        let proc = self.cur_proc_name();
        let line = self.at_line(line);
        self.note_nonfinite(op, &proc, line, false);
        RunError::NonFinite { proc, line }
    }

    fn note_nonfinite(&mut self, op: &str, proc: &str, line: u32, injected: bool) {
        if let Some(st) = &mut self.shadow {
            if st.nonfinite.is_none() {
                st.nonfinite = Some(NonFiniteOrigin {
                    op: op.to_string(),
                    proc: proc.to_string(),
                    line,
                    injected,
                });
            }
        }
    }

    /// Build the shadow report, resolving slot keys to display names.
    /// `None` unless shadow execution was enabled.
    pub fn shadow_report(&self) -> Option<ShadowReport> {
        let st = self.shadow.as_ref()?;
        let name_of = |&(scope, slot): &(usize, usize)| -> String {
            if scope == GLOBAL_SCOPE {
                format!("@global::{}", self.ir.globals[slot].name)
            } else {
                let p = &self.ir.procs[scope];
                format!("{}::{}", p.name, p.slots[slot].name)
            }
        };
        let mut vars: Vec<VarShadow> = st
            .vars
            .iter()
            .map(|(k, e)| VarShadow {
                name: name_of(k),
                max_rel: e.max_rel,
                final_rel: e.final_rel,
                stores: e.stores,
                min_primary: Some(e.min_primary),
                max_primary: Some(e.max_primary),
            })
            .collect();
        vars.sort_by(|a, b| b.max_rel.total_cmp(&a.max_rel).then(a.name.cmp(&b.name)));
        let records: Vec<VarShadow> = {
            let mut r: Vec<VarShadow> = st
                .records
                .iter()
                .map(|(k, e)| VarShadow {
                    name: k.clone(),
                    max_rel: e.max_rel,
                    final_rel: e.final_rel,
                    stores: e.stores,
                    min_primary: Some(e.min_primary),
                    max_primary: Some(e.max_primary),
                })
                .collect();
            r.sort_by(|a, b| b.max_rel.total_cmp(&a.max_rel).then(a.name.cmp(&b.name)));
            r
        };
        let worst_rel = vars.first().map(|v| v.max_rel).unwrap_or(0.0);
        Some(ShadowReport {
            vars,
            records,
            worst_rel,
            cancellations: st.cancellations,
            worst_cancellation: st.worst_cancellation.clone(),
            nonfinite: st.nonfinite.clone(),
        })
    }

    // ---- cost charging ---------------------------------------------------

    /// Charge `cycles` tagged with a precision (discountable when the
    /// enclosing loop vectorizes).
    fn charge_tagged(&mut self, prec: FpPrecision, cycles: f64) {
        let proc = self.cur_proc();
        if let Some(ctx) = self.loop_stack.last_mut() {
            let b = ctx.bucket(proc);
            match prec {
                FpPrecision::Single => b.f32_cost += cycles,
                FpPrecision::Double => b.f64_cost += cycles,
            }
        } else {
            self.proc_cycles[proc] += cycles;
            self.total += cycles;
        }
    }

    /// Charge untaggable (integer/control) work — discounted at f64 lanes.
    fn charge_plain(&mut self, cycles: f64) {
        self.charge_tagged(FpPrecision::Double, cycles);
    }

    /// Charge a precision conversion between scalar operands. Conversion
    /// instructions vectorize (`vcvtps2pd`), so this does NOT demote the
    /// enclosing loop — it just costs (tagged f64, so it discounts at f64
    /// lanes when the loop vectorizes).
    fn charge_cast(&mut self) {
        let cost = self.params.cast;
        self.ops.casts += 1;
        self.charge_tagged(FpPrecision::Double, cost);
    }

    /// Charge a converting *store* (an array element written at a different
    /// precision than its value). Mixed-width store streams are where the
    /// vectorizer gives up, so this demotes the enclosing loop — it is also
    /// what makes synthesized wrapper copy loops expensive.
    fn charge_cast_store(&mut self) {
        let cost = self.params.cast;
        self.ops.cast_stores += 1;
        if let Some(ctx) = self.loop_stack.last_mut() {
            ctx.saw_cast = true;
        }
        self.charge_tagged(FpPrecision::Double, cost);
    }

    /// Mark that a non-inlined call (or other vectorization-hostile event)
    /// happened inside any enclosing loop.
    fn mark_call(&mut self) {
        if let Some(ctx) = self.loop_stack.last_mut() {
            ctx.saw_call = true;
        }
    }

    fn charge_op(&mut self, class: OpClass, prec: FpPrecision) {
        let c = self.params.op_cost_at(class, prec);
        match prec {
            FpPrecision::Single => self.ops.fp32_ops += 1,
            FpPrecision::Double => self.ops.fp64_ops += 1,
        }
        self.charge_tagged(prec, c);
    }

    fn charge_mem(&mut self, prec: FpPrecision) {
        let c = self.params.mem_cost(prec);
        self.ops.mem_ops += 1;
        self.charge_tagged(prec, c);
    }

    fn bump_event(&mut self) -> R<()> {
        self.events += 1;
        if self.events > self.max_events {
            return Err(RunError::EventLimit);
        }
        if self.events & (DEADLINE_CHECK_INTERVAL - 1) == 0 {
            if let Some(at) = self.deadline_at {
                if std::time::Instant::now() >= at {
                    return Err(RunError::Deadline {
                        ms: self.deadline_ms,
                    });
                }
            }
        }
        if let Some(f) = &self.fault {
            if self.events >= f.after_events() {
                return Err(self.fire_fault());
            }
        }
        Ok(())
    }

    fn check_budget(&self) -> R<()> {
        if self.total > self.budget {
            return Err(RunError::Timeout {
                budget: self.budget,
            });
        }
        Ok(())
    }

    // ---- globals ---------------------------------------------------------

    fn init_globals(&mut self) -> R<()> {
        let ir = self.ir;
        // Slots first (so dim expressions can read earlier constants).
        self.globals = Frame::for_decls(&ir.globals, self.sh_on);
        // Evaluate initializers and array shapes in declaration order.
        for (i, decl) in ir.globals.iter().enumerate() {
            if let Some(dims) = &decl.dims {
                if !decl.allocatable {
                    let mut frame = Frame::new();
                    let bounds = self.eval_bounds(dims, &mut frame, 0)?;
                    let arr = self.make_array(decl, bounds, 0)?;
                    self.globals[i] = Slot::Array(Rc::new(RefCell::new(arr)));
                }
            } else if let Some(init) = &decl.init {
                let mut frame = Frame::new();
                let v = self.eval(init, &mut frame)?;
                let slot = self.convert_to_slot(decl, v, 0)?;
                self.globals[i] = slot;
                self.store_scalar_shadow(SlotRef::Global(i), &mut frame);
            }
        }
        Ok(())
    }

    fn make_array(&self, decl: &SlotDecl, bounds: Vec<(i64, i64)>, line: u32) -> R<ArrayVal> {
        Ok(match decl.ty {
            STy::Fp(p) => {
                let a = ArrayVal::new_fp(p, bounds);
                if self.sh_on {
                    a.with_shadow()
                } else {
                    a
                }
            }
            STy::Int => ArrayVal::new_int(bounds),
            STy::Bool => ArrayVal::new_bool(bounds),
            STy::Str => return Err(self.err_invalid(line, "character arrays are not supported")),
        })
    }

    fn eval_bounds(&mut self, dims: &[IDim], frame: &mut Frame, line: u32) -> R<Vec<(i64, i64)>> {
        dims.iter()
            .map(|d| match d {
                IDim::Explicit { lower, upper } => {
                    let lo = match lower {
                        Some(e) => self.eval_int(e, frame, line)?,
                        None => 1,
                    };
                    let hi = self.eval_int(upper, frame, line)?;
                    Ok((lo, hi))
                }
                IDim::Deferred => {
                    Err(self.err_invalid(line, "deferred bound where explicit shape required"))
                }
            })
            .collect()
    }

    // ---- calls -----------------------------------------------------------

    /// Call a procedure; returns the function result (None for subroutines).
    pub fn call_proc(
        &mut self,
        proc_id: usize,
        args: &[IArg],
        caller_frame: &mut Frame,
    ) -> R<Option<Num>> {
        // Fortran procedures here are non-recursive; the guard exists to
        // turn accidental recursion into a reported error well before the
        // interpreter's own (Rust) stack is at risk, including under debug
        // builds' larger frames.
        if self.proc_stack.len() > 64 {
            return Err(RunError::StackOverflow);
        }
        self.check_budget()?;
        let ir = self.ir;
        let proc = &ir.procs[proc_id];
        let inlined = proc.inlinable;

        // Accounting: the timer sees every invocation; non-inlined calls pay
        // overhead and poison enclosing vectorizable loops.
        self.proc_calls[proc_id] += 1;
        if !inlined && !self.proc_stack.is_empty() {
            self.mark_call();
            self.ops.timed_calls += 1;
            let oh = self.params.call_overhead + self.params.timer_overhead;
            self.charge_plain(oh);
        }

        // Bind arguments.
        let mut frame = Frame::for_decls(&proc.slots, self.sh_on);
        let mut writebacks: Vec<(ILValue, usize)> = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            let slot_idx = proc.params[i];
            let decl = &proc.slots[slot_idx];
            match arg {
                IArg::Value(e) => {
                    let v = self.eval(e, caller_frame)?;
                    frame[slot_idx] = self.convert_to_slot(decl, v, 0)?;
                    frame.sh_set(slot_idx, self.sh_reg);
                }
                IArg::ScalarRef(lv) => {
                    let v = self.read_lvalue(lv, caller_frame, 0)?;
                    frame[slot_idx] = self.convert_to_slot(decl, v, 0)?;
                    frame.sh_set(slot_idx, self.sh_reg);
                    if decl.intent != Some(prose_fortran::ast::Intent::In) {
                        writebacks.push((lv.clone(), slot_idx));
                    }
                }
                IArg::ArrayRef(r) => {
                    let handle = self.read_array_handle(*r, caller_frame, 0)?;
                    // Kind check: argument association never converts.
                    let actual_prec = handle.borrow().data.fp_precision();
                    match (decl.ty, actual_prec) {
                        (STy::Fp(dp), Some(ap)) if dp != ap => {
                            return Err(self.err_invalid(
                                0,
                                format!(
                                    "argument kind mismatch binding array to dummy `{}` \
                                     (kind={} vs kind={}) — Fortran would not compile this; \
                                     run the transformer to synthesize wrappers",
                                    decl.name,
                                    ap.kind(),
                                    dp.kind()
                                ),
                            ))
                        }
                        (STy::Fp(_), Some(_)) | (STy::Int, None) => {}
                        (STy::Int, Some(_)) | (STy::Fp(_), None) => {
                            return Err(self.err_invalid(
                                0,
                                format!("argument type mismatch on dummy `{}`", decl.name),
                            ))
                        }
                        _ => {}
                    }
                    frame[slot_idx] = Slot::Array(handle);
                }
            }
        }

        // Initialize non-dummy locals (automatic arrays may reference dummies).
        for (i, decl) in proc.slots.iter().enumerate() {
            if decl.is_dummy {
                continue;
            }
            if let Some(dims) = &decl.dims {
                if !decl.allocatable {
                    let bounds = self.eval_bounds(dims, &mut frame, 0)?;
                    let arr = self.make_array(decl, bounds, 0)?;
                    frame[i] = Slot::Array(Rc::new(RefCell::new(arr)));
                }
            } else if let Some(init) = &decl.init {
                let v = self.eval(init, &mut frame)?;
                frame[i] = self.convert_to_slot(decl, v, 0)?;
                frame.sh_set(i, self.sh_reg);
            }
        }

        // Execute.
        self.proc_stack.push(proc_id);
        let flow = self.exec_body(&ir.procs[proc_id].body, &mut frame);
        self.proc_stack.pop();
        let flow = flow?;

        // Copy-out scalar refs.
        for (lv, slot_idx) in writebacks {
            let v = slot_to_num(&frame[slot_idx])
                .ok_or_else(|| self.err_invalid(0, "writeback of non-scalar"))?;
            self.sh_reg = self.load_shadow(SlotRef::Local(slot_idx), &frame);
            self.write_lvalue(&lv, v, caller_frame, 0, false)?;
        }

        if flow == Flow::Halt {
            // Sentinel unwound by `run()` into clean termination.
            return Err(RunError::Stop { code: 0 });
        }

        let proc = &ir.procs[proc_id];
        if proc.is_function {
            let rs = proc.result_slot.expect("functions have result slots");
            let v = slot_to_num(&frame[rs])
                .ok_or_else(|| self.err_invalid(0, "function result is not scalar"))?;
            self.sh_reg = self.load_shadow(SlotRef::Local(rs), &frame);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    // ---- statements ------------------------------------------------------

    fn exec_body(&mut self, body: &[IStmt], frame: &mut Frame) -> R<Flow> {
        for s in body {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &IStmt, frame: &mut Frame) -> R<Flow> {
        self.bump_event()?;
        if let Some(line) = stmt_line(s) {
            self.cur_line = line;
        }
        match s {
            IStmt::AssignScalar { slot, value, line } => {
                let v = self.eval(value, frame)?;
                self.store_scalar(*slot, v, frame, *line)?;
                Ok(Flow::Normal)
            }
            IStmt::AssignElem {
                slot,
                indices,
                value,
                line,
            } => {
                let v = self.eval(value, frame)?;
                // Subscript evaluation clobbers the shadow register: hold
                // the value's shadow across it.
                let vsh = self.sh_reg;
                let subs = self.eval_subs(indices, frame, *line)?;
                let arr = self.read_array_handle(*slot, frame, *line)?;
                let (prec, stored) = {
                    let a = arr.borrow();
                    let off = a.offset(&subs).ok_or_else(|| RunError::OutOfBounds {
                        proc: self.cur_proc_name(),
                        line: self.at_line(*line),
                    })?;
                    drop(a);
                    let mut a = arr.borrow_mut();
                    match a.data.fp_precision() {
                        Some(p) => {
                            let fv = self.num_to_fp(v, p, *line)?;
                            a.set_fp(off, fv);
                            a.shadow_set(off, vsh);
                            (Some(p), Some(fv.as_f64()))
                        }
                        None => {
                            // Integer array element.
                            let iv = v.as_int().ok_or_else(|| {
                                self.err_invalid(*line, "non-integer into integer array")
                            })?;
                            if let crate::value::ArrayData::Int(d) = &mut a.data {
                                d[off] = iv;
                            }
                            (None, None)
                        }
                    }
                };
                if self.sh_on {
                    if let Some(prim) = stored {
                        self.note_var(*slot, prim, vsh);
                    }
                }
                match prec {
                    Some(p) => self.charge_mem(p),
                    None => self.charge_plain(self.params.op_int),
                }
                Ok(Flow::Normal)
            }
            IStmt::AssignBroadcast { slot, value, line } => {
                let v = self.eval(value, frame)?;
                let vsh = self.sh_reg;
                let arr = self.read_array_handle(*slot, frame, *line)?;
                let n = arr.borrow().len();
                let prec = arr.borrow().data.fp_precision();
                match prec {
                    Some(p) => {
                        let fv = self.num_to_fp(v, p, *line)?;
                        let mut a = arr.borrow_mut();
                        for off in 0..n {
                            a.set_fp(off, fv);
                        }
                        if let Some(s) = &mut a.shadow {
                            s.fill(vsh);
                        }
                        drop(a);
                        // Broadcast stores vectorize.
                        let cost = n as f64 * self.params.mem_cost(p) / self.params.lanes(p);
                        self.charge_tagged(p, cost);
                    }
                    None => {
                        let iv = v
                            .as_int()
                            .ok_or_else(|| self.err_invalid(*line, "non-integer broadcast"))?;
                        let mut a = arr.borrow_mut();
                        if let crate::value::ArrayData::Int(d) = &mut a.data {
                            for x in d.iter_mut() {
                                *x = iv;
                            }
                        }
                        drop(a);
                        self.charge_plain(n as f64 * self.params.op_int);
                    }
                }
                Ok(Flow::Normal)
            }
            IStmt::AssignArrayCopy { dst, src, line } => {
                let d = self.read_array_handle(*dst, frame, *line)?;
                let s_ = self.read_array_handle(*src, frame, *line)?;
                if Rc::ptr_eq(&d, &s_) {
                    return Ok(Flow::Normal);
                }
                let sb = s_.borrow();
                let mut db = d.borrow_mut();
                if db.len() != sb.len() {
                    return Err(self.err_invalid(*line, "array copy shape mismatch"));
                }
                let n = sb.len();
                let (dp, sp) = (db.data.fp_precision(), sb.data.fp_precision());
                match (dp, sp) {
                    (Some(dp), Some(sp)) => {
                        for off in 0..n {
                            let v = sb.get_fp(off);
                            db.set_fp(off, v);
                        }
                        if let (Some(ss), Some(ds)) = (&sb.shadow, &mut db.shadow) {
                            ds.clone_from(ss);
                        }
                        drop(db);
                        drop(sb);
                        if dp != sp {
                            // Converting copy: scalar-rate conversion loop.
                            let cost = n as f64
                                * (self.params.cast
                                    + self.params.mem_cost(sp)
                                    + self.params.mem_cost(dp));
                            if let Some(ctx) = self.loop_stack.last_mut() {
                                ctx.saw_cast = true;
                            }
                            self.charge_tagged(FpPrecision::Double, cost);
                        } else {
                            let cost =
                                n as f64 * 2.0 * self.params.mem_cost(sp) / self.params.lanes(sp);
                            self.charge_tagged(sp, cost);
                        }
                    }
                    _ => return Err(self.err_invalid(*line, "array copy type mismatch")),
                }
                Ok(Flow::Normal)
            }
            IStmt::If {
                arms,
                else_body,
                line,
            } => {
                for (cond, body) in arms {
                    let c = self.eval(cond, frame)?;
                    self.charge_plain(self.params.op_int); // branch
                    if c.as_bool()
                        .ok_or_else(|| self.err_invalid(*line, "non-logical condition"))?
                    {
                        return self.exec_body(body, frame);
                    }
                }
                self.exec_body(else_body, frame)
            }
            IStmt::Do {
                var,
                start,
                end,
                step,
                body,
                meta,
                line,
            } => {
                let s0 = self.eval_int(start, frame, *line)?;
                let e0 = self.eval_int(end, frame, *line)?;
                let st = match step {
                    Some(x) => self.eval_int(x, frame, *line)?,
                    None => 1,
                };
                if st == 0 {
                    return Err(self.err_invalid(*line, "zero do-loop step"));
                }
                let candidate = meta.vectorizable;
                if candidate {
                    self.loop_stack.push(LoopCtx::new());
                }
                let mut flow = Flow::Normal;
                let mut i = s0;
                loop {
                    if (st > 0 && i > e0) || (st < 0 && i < e0) {
                        break;
                    }
                    self.store_int(*var, i, frame);
                    self.ops.loop_iters += 1;
                    self.charge_plain(self.params.loop_control);
                    self.bump_event()?;
                    match self.exec_body(body, frame) {
                        Ok(Flow::Normal) | Ok(Flow::CycleLoop) => {}
                        Ok(Flow::ExitLoop) => break,
                        Ok(other) => {
                            flow = other;
                            break;
                        }
                        Err(e) => {
                            // Fold buffered cost before propagating so
                            // timers stay meaningful on errors.
                            if candidate {
                                self.fold_top_loop();
                            }
                            return Err(e);
                        }
                    }
                    i += st;
                }
                if candidate {
                    self.fold_top_loop();
                }
                self.check_budget()?;
                Ok(flow)
            }
            IStmt::DoWhile { cond, body, line } => {
                let mut flow = Flow::Normal;
                loop {
                    let c = self.eval(cond, frame)?;
                    self.ops.loop_iters += 1;
                    self.charge_plain(self.params.loop_control);
                    self.bump_event()?;
                    if !c
                        .as_bool()
                        .ok_or_else(|| self.err_invalid(*line, "non-logical condition"))?
                    {
                        break;
                    }
                    match self.exec_body(body, frame)? {
                        Flow::Normal | Flow::CycleLoop => {}
                        Flow::ExitLoop => break,
                        other => {
                            flow = other;
                            break;
                        }
                    }
                    self.check_budget()?;
                }
                Ok(flow)
            }
            IStmt::CallSub { proc, args, .. } => {
                self.call_proc(*proc, args, frame)?;
                Ok(Flow::Normal)
            }
            IStmt::CallIntrinsicSub {
                f,
                name_arg,
                args,
                line,
            } => {
                self.exec_intrinsic_sub(*f, name_arg.as_deref(), args, frame, *line)?;
                Ok(Flow::Normal)
            }
            IStmt::Return => Ok(Flow::Return),
            IStmt::Exit => Ok(Flow::ExitLoop),
            IStmt::Cycle => Ok(Flow::CycleLoop),
            IStmt::Print { items, .. } => {
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    let v = self.eval(e, frame)?;
                    parts.push(format_num(&v));
                }
                self.records.stdout.push(parts.join(" "));
                self.charge_plain(100.0);
                Ok(Flow::Normal)
            }
            IStmt::Stop { code, .. } => match code {
                None | Some(0) => Ok(Flow::Halt),
                Some(c) => Err(RunError::Stop { code: *c }),
            },
            IStmt::Allocate { slot, dims, line } => {
                let bounds = self.eval_bounds(dims, frame, *line)?;
                let decl = self.slot_decl(*slot).clone();
                let arr = self.make_array(&decl, bounds, *line)?;
                self.put_slot(*slot, Slot::Array(Rc::new(RefCell::new(arr))), frame);
                Ok(Flow::Normal)
            }
            IStmt::Deallocate { slots, .. } => {
                for r in slots {
                    self.put_slot(*r, Slot::Unallocated, frame);
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn fold_top_loop(&mut self) {
        if let Some(ctx) = self.loop_stack.pop() {
            let (folded, _vectorized) = ctx.fold(&self.params);
            for (proc, cycles) in folded {
                self.proc_cycles[proc] += cycles;
                self.total += cycles;
            }
        }
    }

    fn exec_intrinsic_sub(
        &mut self,
        f: IntrinsicSub,
        name_arg: Option<&str>,
        args: &[IArg],
        frame: &mut Frame,
        line: u32,
    ) -> R<()> {
        match f {
            IntrinsicSub::ProseRecord => {
                let v = match &args[0] {
                    IArg::Value(e) => self.eval(e, frame)?,
                    _ => unreachable!("lowering guarantees a value arg"),
                };
                let x = v
                    .as_f64()
                    .ok_or_else(|| self.err_invalid(line, "prose_record of non-numeric"))?;
                let key = name_arg.unwrap_or("unnamed");
                if let Some(st) = &mut self.shadow {
                    st.records
                        .entry(key.to_string())
                        .or_default()
                        .update(x, self.sh_reg);
                }
                self.records
                    .scalars
                    .entry(key.to_string())
                    .or_default()
                    .push(x);
                Ok(())
            }
            IntrinsicSub::ProseRecordArray => {
                let handle = match &args[0] {
                    IArg::ArrayRef(r) => self.read_array_handle(*r, frame, line)?,
                    _ => unreachable!("lowering guarantees an array arg"),
                };
                let snap = handle.borrow().snapshot_f64();
                let key = name_arg.unwrap_or("unnamed");
                if self.sh_on {
                    let sh = handle.borrow().shadow.clone();
                    if let (Some(sh), Some(st)) = (sh, &mut self.shadow) {
                        let e = st.records.entry(key.to_string()).or_default();
                        for (p, s) in snap.iter().zip(&sh) {
                            e.update(*p, *s);
                        }
                    }
                }
                self.records
                    .arrays
                    .entry(key.to_string())
                    .or_default()
                    .push(snap);
                Ok(())
            }
            IntrinsicSub::MpiAllreduceSum | IntrinsicSub::MpiAllreduceMax => {
                // One logical rank: the collective is the identity on the
                // data but a fixed latency on the clock, independent of
                // precision (vendor reductions do not vectorize, [41]).
                let v = match &args[0] {
                    IArg::Value(e) => self.eval(e, frame)?,
                    _ => unreachable!(),
                };
                let out = match &args[1] {
                    IArg::ScalarRef(lv) => lv.clone(),
                    _ => unreachable!(),
                };
                self.mark_call();
                self.ops.allreduces += 1;
                self.charge_plain(self.params.allreduce);
                self.write_lvalue(&out, v, frame, line, true)?;
                Ok(())
            }
        }
    }

    // ---- lvalues and slots -----------------------------------------------

    fn slot_decl(&self, r: SlotRef) -> &'ir SlotDecl {
        let ir = self.ir;
        match r {
            SlotRef::Local(i) => &ir.procs[self.cur_proc()].slots[i],
            SlotRef::Global(i) => &ir.globals[i],
        }
    }

    fn put_slot(&mut self, r: SlotRef, v: Slot, frame: &mut Frame) {
        match r {
            SlotRef::Local(i) => frame[i] = v,
            SlotRef::Global(i) => self.globals[i] = v,
        }
    }

    fn get_slot<'a>(&'a self, r: SlotRef, frame: &'a Frame) -> &'a Slot {
        match r {
            SlotRef::Local(i) => &frame[i],
            SlotRef::Global(i) => &self.globals[i],
        }
    }

    fn read_array_handle(&self, r: SlotRef, frame: &Frame, line: u32) -> R<ArrayRef> {
        match self.get_slot(r, frame) {
            Slot::Array(h) => Ok(Rc::clone(h)),
            Slot::Unallocated => Err(RunError::Unallocated {
                proc: self.cur_proc_name(),
                line: self.at_line(line),
            }),
            _ => Err(self.err_invalid(line, "expected an array")),
        }
    }

    fn store_int(&mut self, r: SlotRef, v: i64, frame: &mut Frame) {
        self.put_slot(r, Slot::Int(v), frame);
    }

    /// Store a scalar with Fortran assignment conversion (and cast charges).
    /// Under shadow execution the value's shadow must be in the register
    /// (i.e. no intervening `eval` since the value was produced).
    fn store_scalar(&mut self, r: SlotRef, v: Num, frame: &mut Frame, line: u32) -> R<()> {
        let decl_ty = self.slot_decl(r).ty;
        let slot = self.convert_with_charges(decl_ty, v, line)?;
        self.put_slot(r, slot, frame);
        self.store_scalar_shadow(r, frame);
        Ok(())
    }

    /// Convert a value for a slot, charging casts (assignment context).
    fn convert_with_charges(&mut self, ty: STy, v: Num, line: u32) -> R<Slot> {
        match (ty, v) {
            (STy::Fp(p), Num::Fp(f)) => {
                if f.precision() != p {
                    self.charge_cast();
                }
                let out = f.to_precision(p);
                self.check_finite(out, line, "store")?;
                Ok(Slot::Fp(out))
            }
            (STy::Fp(p), Num::Lit(x)) => {
                let out = Fp::from_f64(x, p);
                self.check_finite(out, line, "store")?;
                Ok(Slot::Fp(out))
            }
            (STy::Fp(p), Num::Int(i)) => {
                self.charge_plain(self.params.op_int);
                Ok(Slot::Fp(Fp::from_f64(i as f64, p)))
            }
            (STy::Int, Num::Int(i)) => Ok(Slot::Int(i)),
            (STy::Int, Num::Fp(f)) => {
                self.charge_cast();
                Ok(Slot::Int(f.as_f64().trunc() as i64))
            }
            (STy::Int, Num::Lit(x)) => Ok(Slot::Int(x.trunc() as i64)),
            (STy::Bool, Num::Bool(b)) => Ok(Slot::Bool(b)),
            (STy::Str, Num::Str(s)) => Ok(Slot::Str(s)),
            (ty, v) => {
                Err(self.err_invalid(line, format!("cannot assign {v:?} to a {ty:?} variable")))
            }
        }
    }

    /// Conversion without the cast accounting (argument copy-in uses the
    /// same rules but its cost is part of the call model).
    fn convert_to_slot(&mut self, decl: &SlotDecl, v: Num, line: u32) -> R<Slot> {
        // Precision-mismatched scalar argument association is invalid
        // Fortran; enforce for Fp-to-Fp pairs.
        if let (STy::Fp(p), Num::Fp(f)) = (decl.ty, &v) {
            if f.precision() != p {
                return Err(self.err_invalid(
                    line,
                    format!(
                        "argument kind mismatch on dummy `{}` (kind={} vs kind={}) — \
                         Fortran would not compile this; run the transformer to \
                         synthesize wrappers",
                        decl.name,
                        f.precision().kind(),
                        p.kind()
                    ),
                ));
            }
        }
        self.convert_with_charges(decl.ty, v, line)
    }

    fn check_finite(&mut self, f: Fp, line: u32, op: &'static str) -> R<()> {
        if f.is_finite() {
            Ok(())
        } else {
            Err(self.nonfinite_at(line, op))
        }
    }

    fn read_lvalue(&mut self, lv: &ILValue, frame: &mut Frame, line: u32) -> R<Num> {
        match lv {
            ILValue::Scalar(r) => {
                let v = slot_to_num(self.get_slot(*r, frame))
                    .ok_or_else(|| self.err_invalid(line, "scalar read of non-scalar slot"))?;
                if self.sh_on {
                    self.sh_reg = self.load_shadow(*r, frame);
                }
                Ok(v)
            }
            ILValue::Elem { slot, indices } => {
                let subs = self.eval_subs(indices, frame, line)?;
                let arr = self.read_array_handle(*slot, frame, line)?;
                let a = arr.borrow();
                let off = a.offset(&subs).ok_or_else(|| RunError::OutOfBounds {
                    proc: self.cur_proc_name(),
                    line: self.at_line(line),
                })?;
                let v = match a.data.fp_precision() {
                    Some(p) => {
                        drop(a);
                        self.charge_mem(p);
                        let a = arr.borrow();
                        if self.sh_on {
                            self.sh_reg = a.shadow_at(off);
                        }
                        Num::Fp(a.get_fp(off))
                    }
                    None => match &a.data {
                        crate::value::ArrayData::Int(d) => {
                            if self.sh_on {
                                self.sh_reg = d[off] as f64;
                            }
                            Num::Int(d[off])
                        }
                        _ => return Err(self.err_invalid(line, "unsupported array read")),
                    },
                };
                Ok(v)
            }
        }
    }

    /// Write a value through an lvalue. `charge` controls whether the write
    /// pays assignment-conversion costs (writebacks don't: they are part of
    /// the call model).
    fn write_lvalue(
        &mut self,
        lv: &ILValue,
        v: Num,
        frame: &mut Frame,
        line: u32,
        charge: bool,
    ) -> R<()> {
        // Hold the value's shadow across subscript evaluation.
        let vsh = self.sh_reg;
        match lv {
            ILValue::Scalar(r) => {
                if charge {
                    self.store_scalar(*r, v, frame, line)
                } else {
                    let ty = self.slot_decl(*r).ty;
                    let slot = match (ty, v) {
                        (STy::Fp(p), Num::Fp(f)) => Slot::Fp(f.to_precision(p)),
                        (STy::Fp(p), Num::Lit(x)) => Slot::Fp(Fp::from_f64(x, p)),
                        (STy::Fp(p), Num::Int(i)) => Slot::Fp(Fp::from_f64(i as f64, p)),
                        (STy::Int, Num::Int(i)) => Slot::Int(i),
                        (STy::Bool, Num::Bool(b)) => Slot::Bool(b),
                        (STy::Str, Num::Str(s)) => Slot::Str(s),
                        (ty, v) => {
                            return Err(self
                                .err_invalid(line, format!("cannot write back {v:?} into {ty:?}")))
                        }
                    };
                    self.put_slot(*r, slot, frame);
                    self.store_scalar_shadow(*r, frame);
                    Ok(())
                }
            }
            ILValue::Elem { slot, indices } => {
                let subs = self.eval_subs(indices, frame, line)?;
                let arr = self.read_array_handle(*slot, frame, line)?;
                let mut a = arr.borrow_mut();
                let off = a.offset(&subs).ok_or_else(|| RunError::OutOfBounds {
                    proc: self.cur_proc_name(),
                    line: self.at_line(line),
                })?;
                match a.data.fp_precision() {
                    Some(p) => {
                        drop(a);
                        let fv = self.num_to_fp(v, p, line)?;
                        let mut a = arr.borrow_mut();
                        a.set_fp(off, fv);
                        a.shadow_set(off, vsh);
                        let prim = fv.as_f64();
                        drop(a);
                        if self.sh_on {
                            self.note_var(*slot, prim, vsh);
                        }
                        if charge {
                            self.charge_mem(p);
                        }
                    }
                    None => {
                        let iv = v
                            .as_int()
                            .ok_or_else(|| self.err_invalid(line, "non-integer element write"))?;
                        if let crate::value::ArrayData::Int(d) = &mut a.data {
                            d[off] = iv;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Convert a Num to an Fp at precision `p` for an array-element store,
    /// charging a converting store when precisions differ.
    fn num_to_fp(&mut self, v: Num, p: FpPrecision, line: u32) -> R<Fp> {
        let out = match v {
            Num::Fp(f) => {
                if f.precision() != p {
                    self.charge_cast_store();
                }
                f.to_precision(p)
            }
            Num::Lit(x) => Fp::from_f64(x, p),
            Num::Int(i) => {
                self.charge_plain(self.params.op_int);
                Fp::from_f64(i as f64, p)
            }
            other => return Err(self.err_invalid(line, format!("expected real, got {other:?}"))),
        };
        self.check_finite(out, line, "elem-store")?;
        Ok(out)
    }

    fn eval_subs(&mut self, indices: &[IExpr], frame: &mut Frame, line: u32) -> R<Vec<i64>> {
        indices
            .iter()
            .map(|e| self.eval_int(e, frame, line))
            .collect()
    }

    fn eval_int(&mut self, e: &IExpr, frame: &mut Frame, line: u32) -> R<i64> {
        let v = self.eval(e, frame)?;
        match v {
            Num::Int(i) => Ok(i),
            Num::Lit(x) => Ok(x.trunc() as i64),
            Num::Fp(f) => Ok(f.as_f64().trunc() as i64),
            other => Err(self.err_invalid(line, format!("expected integer, got {other:?}"))),
        }
    }

    // ---- expressions -----------------------------------------------------

    pub fn eval(&mut self, e: &IExpr, frame: &mut Frame) -> R<Num> {
        match e {
            IExpr::RealLit(v) => {
                self.sh_reg = *v;
                Ok(Num::Lit(*v))
            }
            IExpr::IntLit(v) => {
                self.sh_reg = *v as f64;
                Ok(Num::Int(*v))
            }
            IExpr::BoolLit(b) => {
                self.sh_reg = f64::from(u8::from(*b));
                Ok(Num::Bool(*b))
            }
            IExpr::StrLit(s) => {
                self.sh_reg = 0.0;
                Ok(Num::Str(s.clone()))
            }
            IExpr::LoadScalar(r) => {
                if self.sh_on {
                    self.sh_reg = self.load_shadow(*r, frame);
                }
                slot_to_num(self.get_slot(*r, frame))
                    .ok_or_else(|| self.err_invalid(0, "scalar read of array or unallocated slot"))
            }
            IExpr::LoadElem { slot, indices } => {
                let lv = ILValue::Elem {
                    slot: *slot,
                    indices: indices.clone(),
                };
                self.read_lvalue(&lv, frame, 0)
            }
            IExpr::CallFun { proc, args } => {
                let v = self.call_proc(*proc, args, frame)?;
                v.ok_or_else(|| self.err_invalid(0, "subroutine used as function"))
            }
            IExpr::Intrinsic { f, args } => self.eval_intrinsic(*f, args, frame),
            IExpr::SizeOf { slot, dim } => {
                let arr = self.read_array_handle(*slot, frame, 0)?;
                let n = match dim {
                    Some(d) => {
                        let di = self.eval_int(d, frame, 0)?;
                        let a = arr.borrow();
                        if di < 1 || di as usize > a.rank() {
                            return Err(self.err_invalid(0, "size() dim out of range"));
                        }
                        a.extent(di as usize)
                    }
                    None => arr.borrow().len() as i64,
                };
                self.sh_reg = n as f64;
                Ok(Num::Int(n))
            }
            IExpr::Reduce { f, slot } => {
                let arr = self.read_array_handle(*slot, frame, 0)?;
                let a = arr.borrow();
                let p = a
                    .data
                    .fp_precision()
                    .ok_or_else(|| self.err_invalid(0, "reduction over non-real array"))?;
                let n = a.len() as f64;
                // Reductions vectorize: charge at SIMD rate directly.
                let cost =
                    n * (self.params.op_basic + self.params.mem_cost(p)) / self.params.lanes(p);
                let out = match (&a.data, f) {
                    (crate::value::ArrayData::F32(d), IntrinsicFn::Sum) => Fp::F32(d.iter().sum()),
                    (crate::value::ArrayData::F64(d), IntrinsicFn::Sum) => Fp::F64(d.iter().sum()),
                    (crate::value::ArrayData::F32(d), IntrinsicFn::Maxval) => {
                        Fp::F32(d.iter().copied().fold(f32::NEG_INFINITY, f32::max))
                    }
                    (crate::value::ArrayData::F64(d), IntrinsicFn::Maxval) => {
                        Fp::F64(d.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                    }
                    (crate::value::ArrayData::F32(d), IntrinsicFn::Minval) => {
                        Fp::F32(d.iter().copied().fold(f32::INFINITY, f32::min))
                    }
                    (crate::value::ArrayData::F64(d), IntrinsicFn::Minval) => {
                        Fp::F64(d.iter().copied().fold(f64::INFINITY, f64::min))
                    }
                    _ => return Err(self.err_invalid(0, "unsupported reduction")),
                };
                let sh = if self.sh_on {
                    match (&a.shadow, f) {
                        (Some(s), IntrinsicFn::Sum) => s.iter().sum(),
                        (Some(s), IntrinsicFn::Maxval) => {
                            s.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                        }
                        (Some(s), IntrinsicFn::Minval) => {
                            s.iter().copied().fold(f64::INFINITY, f64::min)
                        }
                        _ => out.as_f64(),
                    }
                } else {
                    0.0
                };
                drop(a);
                self.charge_tagged(p, cost);
                self.check_finite(out, 0, "reduce")?;
                self.sh_reg = sh;
                Ok(Num::Fp(out))
            }
            IExpr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs, frame)?;
                let ash = self.sh_reg;
                let b = self.eval(rhs, frame)?;
                let bsh = self.sh_reg;
                let (pa, pb) = if self.sh_on {
                    (a.as_f64(), b.as_f64())
                } else {
                    (None, None)
                };
                let r = self.binop(*op, a, b, 0)?;
                if self.sh_on {
                    self.shadow_bin(*op, pa, pb, ash, bsh, &r);
                }
                Ok(r)
            }
            IExpr::Un { op, operand } => {
                let v = self.eval(operand, frame)?;
                match op {
                    UnOp::Not => {
                        let b = v
                            .as_bool()
                            .ok_or_else(|| self.err_invalid(0, ".not. of non-logical"))?;
                        self.sh_reg = f64::from(u8::from(!b));
                        Ok(Num::Bool(!b))
                    }
                    UnOp::Plus => Ok(v),
                    UnOp::Neg => match v {
                        Num::Int(i) => {
                            self.charge_plain(self.params.op_int);
                            self.sh_reg = -(i as f64);
                            Ok(Num::Int(-i))
                        }
                        Num::Lit(x) => {
                            self.sh_reg = -self.sh_reg;
                            Ok(Num::Lit(-x))
                        }
                        Num::Fp(f) => {
                            self.charge_op(OpClass::Basic, f.precision());
                            self.sh_reg = -self.sh_reg;
                            Ok(Num::Fp(match f {
                                Fp::F32(x) => Fp::F32(-x),
                                Fp::F64(x) => Fp::F64(-x),
                            }))
                        }
                        other => Err(self.err_invalid(0, format!("negation of {other:?}"))),
                    },
                }
            }
        }
    }

    /// Promote a pair of numeric operands and report the working precision.
    /// Charges (and flags) a conversion when two concrete FP precisions mix.
    fn promote_pair(&mut self, a: Num, b: Num, line: u32) -> R<PromotedPair> {
        use Num::*;
        Ok(match (a, b) {
            (Int(x), Int(y)) => PromotedPair::Int(x, y),
            (Int(x), Lit(y)) => {
                // A literal combined with a runtime integer is real work
                // (the literal is kind-generic but the int varies): charge
                // the conversion; the operator itself is charged by the
                // caller through the LitWork marker.
                self.charge_plain(self.params.op_int);
                PromotedPair::LitWork(x as f64, y)
            }
            (Lit(x), Int(y)) => {
                self.charge_plain(self.params.op_int);
                PromotedPair::LitWork(x, y as f64)
            }
            (Lit(x), Lit(y)) => PromotedPair::Lit(x, y),
            (Fp(f), Int(y)) => {
                self.charge_plain(self.params.op_int);
                match f {
                    crate::value::Fp::F32(x) => PromotedPair::F32(x, y as f32),
                    crate::value::Fp::F64(x) => PromotedPair::F64(x, y as f64),
                }
            }
            (Int(x), Fp(f)) => {
                self.charge_plain(self.params.op_int);
                match f {
                    crate::value::Fp::F32(y) => PromotedPair::F32(x as f32, y),
                    crate::value::Fp::F64(y) => PromotedPair::F64(x as f64, y),
                }
            }
            (Fp(f), Lit(y)) => match f {
                crate::value::Fp::F32(x) => PromotedPair::F32(x, y as f32),
                crate::value::Fp::F64(x) => PromotedPair::F64(x, y),
            },
            (Lit(x), Fp(f)) => match f {
                crate::value::Fp::F32(y) => PromotedPair::F32(x as f32, y),
                crate::value::Fp::F64(y) => PromotedPair::F64(x, y),
            },
            (Fp(fa), Fp(fb)) => {
                match (fa, fb) {
                    (crate::value::Fp::F32(x), crate::value::Fp::F32(y)) => PromotedPair::F32(x, y),
                    (crate::value::Fp::F64(x), crate::value::Fp::F64(y)) => PromotedPair::F64(x, y),
                    // Mixed: the conversion instruction the whole paper is
                    // about.
                    (crate::value::Fp::F32(x), crate::value::Fp::F64(y)) => {
                        self.charge_cast();
                        PromotedPair::F64(x as f64, y)
                    }
                    (crate::value::Fp::F64(x), crate::value::Fp::F32(y)) => {
                        self.charge_cast();
                        PromotedPair::F64(x, y as f64)
                    }
                }
            }
            (a, b) => {
                return Err(self.err_invalid(line, format!("non-numeric operands {a:?}, {b:?}")))
            }
        })
    }

    fn binop(&mut self, op: BinOp, a: Num, b: Num, line: u32) -> R<Num> {
        if op.is_logical() {
            let (x, y) = (
                a.as_bool()
                    .ok_or_else(|| self.err_invalid(line, "non-logical operand"))?,
                b.as_bool()
                    .ok_or_else(|| self.err_invalid(line, "non-logical operand"))?,
            );
            return Ok(Num::Bool(match op {
                BinOp::And => x && y,
                BinOp::Or => x || y,
                _ => unreachable!(),
            }));
        }
        let pair = self.promote_pair(a, b, line)?;
        if op.is_comparison() {
            let r = match pair {
                PromotedPair::Int(x, y) => {
                    self.charge_plain(self.params.op_int);
                    compare(op, x as f64, y as f64)
                }
                PromotedPair::Lit(x, y) => compare(op, x, y),
                PromotedPair::LitWork(x, y) => {
                    self.charge_op(OpClass::Basic, FpPrecision::Double);
                    compare(op, x, y)
                }
                PromotedPair::F32(x, y) => {
                    self.charge_op(OpClass::Basic, FpPrecision::Single);
                    compare(op, x as f64, y as f64)
                }
                PromotedPair::F64(x, y) => {
                    self.charge_op(OpClass::Basic, FpPrecision::Double);
                    compare(op, x, y)
                }
            };
            return Ok(Num::Bool(r));
        }
        // Arithmetic.
        match pair {
            PromotedPair::Int(x, y) => {
                self.charge_plain(self.params.op_int);
                let r = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RunError::DivByZero {
                                proc: self.cur_proc_name(),
                                line,
                            });
                        }
                        x / y
                    }
                    BinOp::Pow => int_pow(x, y),
                    _ => unreachable!(),
                };
                Ok(Num::Int(r))
            }
            PromotedPair::Lit(x, y) => {
                // Pure-literal arithmetic: compile-time folded; no charge.
                let r = apply_f64(op, x, y);
                if !r.is_finite() {
                    return Err(self.nonfinite_at(line, "arith"));
                }
                Ok(Num::Lit(r))
            }
            PromotedPair::LitWork(x, y) => {
                self.charge_op(op_class(op), FpPrecision::Double);
                let r = apply_f64(op, x, y);
                if !r.is_finite() {
                    return Err(self.nonfinite_at(line, "arith"));
                }
                Ok(Num::Lit(r))
            }
            PromotedPair::F32(x, y) => {
                self.charge_op(op_class(op), FpPrecision::Single);
                let r = apply_f32(op, x, y);
                let out = Fp::F32(r);
                self.check_finite(out, line, "arith")?;
                Ok(Num::Fp(out))
            }
            PromotedPair::F64(x, y) => {
                self.charge_op(op_class(op), FpPrecision::Double);
                let r = apply_f64(op, x, y);
                let out = Fp::F64(r);
                self.check_finite(out, line, "arith")?;
                Ok(Num::Fp(out))
            }
        }
    }

    fn eval_intrinsic(&mut self, f: IntrinsicFn, args: &[IExpr], frame: &mut Frame) -> R<Num> {
        use IntrinsicFn::*;
        // Evaluate arguments first, capturing each one's shadow as it lands
        // in the register (the next eval overwrites it).
        let mut vals = Vec::with_capacity(args.len());
        let mut shs = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, frame)?);
            shs.push(self.sh_reg);
        }
        let prec_of = |v: &Num| v.fp_precision().unwrap_or(FpPrecision::Double);
        match f {
            Abs => {
                let v = vals.pop().unwrap();
                self.sh_reg = shs.pop().unwrap().abs();
                match v {
                    Num::Int(i) => {
                        self.charge_plain(self.params.op_int);
                        Ok(Num::Int(i.abs()))
                    }
                    Num::Lit(x) => Ok(Num::Lit(x.abs())),
                    Num::Fp(Fp::F32(x)) => {
                        self.charge_op(OpClass::Basic, FpPrecision::Single);
                        Ok(Num::Fp(Fp::F32(x.abs())))
                    }
                    Num::Fp(Fp::F64(x)) => {
                        self.charge_op(OpClass::Basic, FpPrecision::Double);
                        Ok(Num::Fp(Fp::F64(x.abs())))
                    }
                    other => Err(self.err_invalid(0, format!("abs of {other:?}"))),
                }
            }
            Sqrt => self.unary_math(vals.pop().unwrap(), OpClass::Sqrt, f32::sqrt, f64::sqrt),
            Exp => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::exp,
                f64::exp,
            ),
            Log => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::ln,
                f64::ln,
            ),
            Log10 => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::log10,
                f64::log10,
            ),
            Sin => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::sin,
                f64::sin,
            ),
            Cos => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::cos,
                f64::cos,
            ),
            Tan => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::tan,
                f64::tan,
            ),
            Atan => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::atan,
                f64::atan,
            ),
            Tanh => self.unary_math(
                vals.pop().unwrap(),
                OpClass::Transcendental,
                f32::tanh,
                f64::tanh,
            ),
            Atan2 => {
                let b = vals.pop().unwrap();
                let a = vals.pop().unwrap();
                let (bsh, ash) = (shs.pop().unwrap(), shs.pop().unwrap());
                let pair = self.promote_pair(a, b, 0)?;
                self.charge_op(OpClass::Transcendental, pair.precision());
                pair.apply(self, f32::atan2, f64::atan2, 0, ash, bsh)
            }
            Mod => {
                let b = vals.pop().unwrap();
                let a = vals.pop().unwrap();
                let (bsh, ash) = (shs.pop().unwrap(), shs.pop().unwrap());
                match (&a, &b) {
                    (Num::Int(x), Num::Int(y)) => {
                        if *y == 0 {
                            return Err(RunError::DivByZero {
                                proc: self.cur_proc_name(),
                                line: 0,
                            });
                        }
                        self.charge_plain(self.params.op_int);
                        self.sh_reg = (x % y) as f64;
                        Ok(Num::Int(x % y))
                    }
                    _ => {
                        let pair = self.promote_pair(a, b, 0)?;
                        self.charge_op(OpClass::Div, pair.precision());
                        pair.apply(self, |x, y| x % y, |x, y| x % y, 0, ash, bsh)
                    }
                }
            }
            Sign => {
                let b = vals.pop().unwrap();
                let a = vals.pop().unwrap();
                let (bsh, ash) = (shs.pop().unwrap(), shs.pop().unwrap());
                let pair = self.promote_pair(a, b, 0)?;
                self.charge_op(OpClass::Basic, pair.precision());
                pair.apply(
                    self,
                    |x, y| x.abs().copysign(y),
                    |x, y| x.abs().copysign(y),
                    0,
                    ash,
                    bsh,
                )
            }
            Max | Min => {
                let mut acc = vals[0].clone();
                let mut sacc = shs[0];
                for (v, sv) in vals.into_iter().zip(shs).skip(1) {
                    let pair = self.promote_pair(acc, v, 0)?;
                    self.charge_op(OpClass::Basic, pair.precision());
                    acc = match (f, pair) {
                        (Max, PromotedPair::Int(x, y)) => Num::Int(x.max(y)),
                        (Min, PromotedPair::Int(x, y)) => Num::Int(x.min(y)),
                        (Max, PromotedPair::Lit(x, y)) => Num::Lit(x.max(y)),
                        (Min, PromotedPair::Lit(x, y)) => Num::Lit(x.min(y)),
                        (Max, PromotedPair::F32(x, y)) => Num::Fp(Fp::F32(x.max(y))),
                        (Min, PromotedPair::F32(x, y)) => Num::Fp(Fp::F32(x.min(y))),
                        (Max, PromotedPair::F64(x, y)) => Num::Fp(Fp::F64(x.max(y))),
                        (Min, PromotedPair::F64(x, y)) => Num::Fp(Fp::F64(x.min(y))),
                        _ => unreachable!(),
                    };
                    sacc = match f {
                        Max => sacc.max(sv),
                        Min => sacc.min(sv),
                        _ => unreachable!(),
                    };
                }
                self.sh_reg = match &acc {
                    Num::Int(i) => *i as f64,
                    _ => sacc,
                };
                Ok(acc)
            }
            Real(k) => {
                let v = vals.pop().unwrap();
                let target = k.unwrap_or(FpPrecision::Single);
                self.explicit_convert(v, target)
            }
            Dble => {
                let v = vals.pop().unwrap();
                self.explicit_convert(v, FpPrecision::Double)
            }
            Sngl => {
                let v = vals.pop().unwrap();
                self.explicit_convert(v, FpPrecision::Single)
            }
            Int => {
                let v = vals.pop().unwrap();
                self.charge_plain(self.params.op_basic);
                let r = match v {
                    Num::Int(i) => i,
                    Num::Lit(x) => x.trunc() as i64,
                    Num::Fp(fv) => fv.as_f64().trunc() as i64,
                    other => return Err(self.err_invalid(0, format!("int() of {other:?}"))),
                };
                self.sh_reg = r as f64;
                Ok(Num::Int(r))
            }
            Nint => {
                let v = vals.pop().unwrap();
                self.charge_plain(self.params.op_basic);
                let x = v
                    .as_f64()
                    .ok_or_else(|| self.err_invalid(0, "nint() of non-numeric"))?;
                let r = x.round() as i64;
                self.sh_reg = r as f64;
                Ok(Num::Int(r))
            }
            Floor => {
                let v = vals.pop().unwrap();
                self.charge_plain(self.params.op_basic);
                let x = v
                    .as_f64()
                    .ok_or_else(|| self.err_invalid(0, "floor() of non-numeric"))?;
                let r = x.floor() as i64;
                self.sh_reg = r as f64;
                Ok(Num::Int(r))
            }
            Epsilon => {
                // Environment-inquiry intrinsics report the *variant's*
                // precision: the shadow snaps to the primary value.
                let out = match prec_of(&vals[0]) {
                    FpPrecision::Single => Fp::F32(f32::EPSILON),
                    FpPrecision::Double => Fp::F64(f64::EPSILON),
                };
                self.sh_reg = out.as_f64();
                Ok(Num::Fp(out))
            }
            Huge => {
                let out = match prec_of(&vals[0]) {
                    FpPrecision::Single => Fp::F32(f32::MAX),
                    FpPrecision::Double => Fp::F64(f64::MAX),
                };
                self.sh_reg = out.as_f64();
                Ok(Num::Fp(out))
            }
            Tiny => {
                let out = match prec_of(&vals[0]) {
                    FpPrecision::Single => Fp::F32(f32::MIN_POSITIVE),
                    FpPrecision::Double => Fp::F64(f64::MIN_POSITIVE),
                };
                self.sh_reg = out.as_f64();
                Ok(Num::Fp(out))
            }
            Isnan => {
                let v = vals.pop().unwrap();
                let b = match v {
                    Num::Fp(fv) => fv.is_nan(),
                    Num::Lit(x) => x.is_nan(),
                    _ => false,
                };
                self.sh_reg = f64::from(u8::from(b));
                Ok(Num::Bool(b))
            }
            Sum | Maxval | Minval | Size => {
                unreachable!("lowered to Reduce/SizeOf nodes")
            }
        }
    }

    fn unary_math(
        &mut self,
        v: Num,
        class: OpClass,
        f32f: fn(f32) -> f32,
        f64f: fn(f64) -> f64,
    ) -> R<Num> {
        // Single-argument intrinsic: the operand's shadow is still in the
        // register; replay the op on it in f64.
        if self.sh_on {
            self.sh_reg = f64f(self.sh_reg);
        }
        match v {
            Num::Lit(x) => {
                self.charge_op(class, FpPrecision::Double);
                let r = f64f(x);
                if !r.is_finite() {
                    return Err(self.nonfinite_at(0, "math"));
                }
                Ok(Num::Lit(r))
            }
            Num::Int(i) => {
                self.charge_op(class, FpPrecision::Double);
                let r = f64f(i as f64);
                let out = Fp::F64(r);
                self.check_finite(out, 0, "math")?;
                Ok(Num::Fp(out))
            }
            Num::Fp(Fp::F32(x)) => {
                self.charge_op(class, FpPrecision::Single);
                let out = Fp::F32(f32f(x));
                self.check_finite(out, 0, "math")?;
                Ok(Num::Fp(out))
            }
            Num::Fp(Fp::F64(x)) => {
                self.charge_op(class, FpPrecision::Double);
                let out = Fp::F64(f64f(x));
                self.check_finite(out, 0, "math")?;
                Ok(Num::Fp(out))
            }
            other => Err(self.err_invalid(0, format!("math intrinsic of {other:?}"))),
        }
    }

    /// Explicit conversion intrinsics (`real`, `dble`, `sngl`): a real
    /// conversion instruction, charged as a cast when it changes a concrete
    /// precision.
    fn explicit_convert(&mut self, v: Num, target: FpPrecision) -> R<Num> {
        let out = match v {
            Num::Int(i) => {
                self.charge_plain(self.params.op_int);
                Fp::from_f64(i as f64, target)
            }
            Num::Lit(x) => Fp::from_f64(x, target),
            Num::Fp(f) => {
                if f.precision() != target {
                    self.charge_cast();
                }
                f.to_precision(target)
            }
            other => return Err(self.err_invalid(0, format!("conversion of {other:?}"))),
        };
        self.check_finite(out, 0, "convert")?;
        Ok(Num::Fp(out))
    }
}

/// Operand pair after promotion.
enum PromotedPair {
    Int(i64, i64),
    /// Both operands compile-time constants: foldable, free.
    Lit(f64, f64),
    /// Kind-generic value involving a runtime integer: real work at f64
    /// rate, but the result stays kind-generic.
    LitWork(f64, f64),
    F32(f32, f32),
    F64(f64, f64),
}

impl PromotedPair {
    fn precision(&self) -> FpPrecision {
        match self {
            PromotedPair::F32(..) => FpPrecision::Single,
            _ => FpPrecision::Double,
        }
    }

    fn apply(
        self,
        m: &mut Machine<'_>,
        f32f: fn(f32, f32) -> f32,
        f64f: fn(f64, f64) -> f64,
        line: u32,
        ash: f64,
        bsh: f64,
    ) -> R<Num> {
        let out = match self {
            PromotedPair::Int(x, y) => Num::Int(f64f(x as f64, y as f64) as i64),
            PromotedPair::Lit(x, y) | PromotedPair::LitWork(x, y) => Num::Lit(f64f(x, y)),
            PromotedPair::F32(x, y) => Num::Fp(Fp::F32(f32f(x, y))),
            PromotedPair::F64(x, y) => Num::Fp(Fp::F64(f64f(x, y))),
        };
        if m.sh_on {
            m.sh_reg = match &out {
                Num::Int(i) => *i as f64,
                _ => f64f(ash, bsh),
            };
        }
        if let Num::Fp(f) = &out {
            if !f.is_finite() {
                return Err(m.nonfinite_at(line, "math"));
            }
        }
        Ok(out)
    }
}

fn op_class(op: BinOp) -> OpClass {
    match op {
        BinOp::Div => OpClass::Div,
        BinOp::Pow => OpClass::Pow,
        _ => OpClass::Basic,
    }
}

fn compare(op: BinOp, x: f64, y: f64) -> bool {
    match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!(),
    }
}

fn apply_f64(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Pow => {
            if y == y.trunc() && y.abs() <= 64.0 {
                x.powi(y as i32)
            } else {
                x.powf(y)
            }
        }
        _ => unreachable!(),
    }
}

fn apply_f32(op: BinOp, x: f32, y: f32) -> f32 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Pow => {
            if y == y.trunc() && y.abs() <= 64.0 {
                x.powi(y as i32)
            } else {
                x.powf(y)
            }
        }
        _ => unreachable!(),
    }
}

/// `x ** n` for integers (Fortran semantics: negative exponents floor to 0
/// except for |base| == 1).
fn int_pow(x: i64, n: i64) -> i64 {
    if n >= 0 {
        let mut r: i64 = 1;
        for _ in 0..n.min(63) {
            r = r.wrapping_mul(x);
        }
        r
    } else {
        match x {
            1 => 1,
            -1 => {
                if n % 2 == 0 {
                    1
                } else {
                    -1
                }
            }
            0 => 0,
            _ => 0,
        }
    }
}

/// The source line a statement carries, if any.
fn stmt_line(s: &IStmt) -> Option<u32> {
    match s {
        IStmt::AssignScalar { line, .. }
        | IStmt::AssignElem { line, .. }
        | IStmt::AssignBroadcast { line, .. }
        | IStmt::AssignArrayCopy { line, .. }
        | IStmt::If { line, .. }
        | IStmt::Do { line, .. }
        | IStmt::DoWhile { line, .. }
        | IStmt::CallSub { line, .. }
        | IStmt::CallIntrinsicSub { line, .. }
        | IStmt::Print { line, .. }
        | IStmt::Stop { line, .. }
        | IStmt::Allocate { line, .. }
        | IStmt::Deallocate { line, .. } => Some(*line),
        _ => None,
    }
}

fn default_slot(d: &SlotDecl) -> Slot {
    if d.dims.is_some() {
        Slot::Unallocated
    } else {
        match d.ty {
            STy::Fp(p) => Slot::Fp(Fp::zero(p)),
            STy::Int => Slot::Int(0),
            STy::Bool => Slot::Bool(false),
            STy::Str => Slot::Str(Arc::from("")),
        }
    }
}

fn slot_to_num(s: &Slot) -> Option<Num> {
    match s {
        Slot::Int(i) => Some(Num::Int(*i)),
        Slot::Fp(f) => Some(Num::Fp(*f)),
        Slot::Bool(b) => Some(Num::Bool(*b)),
        Slot::Str(s) => Some(Num::Str(s.clone())),
        _ => None,
    }
}

fn format_num(v: &Num) -> String {
    match v {
        Num::Int(i) => i.to_string(),
        Num::Lit(x) => format!("{x}"),
        Num::Fp(f) => format!("{}", f.as_f64()),
        Num::Bool(b) => if *b { "T" } else { "F" }.to_string(),
        Num::Str(s) => s.to_string(),
    }
}
