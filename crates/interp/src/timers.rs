//! GPTL-style per-procedure timers.
//!
//! The paper instruments hotspot procedures with the GPTL library and
//! measures CPU time *within* the hotspot, excluding non-targeted model
//! procedures but including intrinsic/library work (Section III-E). Here
//! each procedure accumulates exclusive simulated cycles and a call count;
//! hotspot time is the sum over the hotspot's procedure set. Timer overhead
//! (1–7% in the paper) is modeled as a fixed per-call charge.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accumulated timing for one procedure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcTimer {
    /// Exclusive simulated cycles (work attributed while this procedure was
    /// the innermost active one, including its inlined execution).
    pub cycles: f64,
    /// Number of invocations.
    pub calls: u64,
}

impl ProcTimer {
    /// Average cycles per call (Figure 6's y-axis basis).
    pub fn per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cycles / self.calls as f64
        }
    }
}

/// The timer table: procedure name → timer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timers {
    table: HashMap<String, ProcTimer>,
    total: f64,
}

impl Timers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-insert without allocating a `String` on the (overwhelmingly
    /// common) hit path — `entry()` would clone the key on every call.
    fn timer_mut(&mut self, proc: &str) -> &mut ProcTimer {
        if !self.table.contains_key(proc) {
            self.table.insert(proc.to_string(), ProcTimer::default());
        }
        self.table.get_mut(proc).expect("just inserted")
    }

    pub fn charge(&mut self, proc: &str, cycles: f64) {
        self.timer_mut(proc).cycles += cycles;
        self.total += cycles;
    }

    pub fn count_call(&mut self, proc: &str) {
        self.timer_mut(proc).calls += 1;
    }

    /// Bulk-add invocations (used when folding per-id counters).
    pub fn add_calls(&mut self, proc: &str, calls: u64) {
        self.timer_mut(proc).calls += calls;
    }

    pub fn get(&self, proc: &str) -> Option<&ProcTimer> {
        self.table.get(proc)
    }

    /// Total simulated cycles across all procedures — the whole-model time
    /// (Figure 7's metric).
    pub fn total_cycles(&self) -> f64 {
        self.total
    }

    /// Sum of exclusive cycles over a procedure set — the hotspot time
    /// (Figure 5's metric). Missing procedures contribute zero.
    pub fn scoped_cycles<'a>(&self, procs: impl IntoIterator<Item = &'a str>) -> f64 {
        procs
            .into_iter()
            .filter_map(|p| self.table.get(p))
            .map(|t| t.cycles)
            .sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &ProcTimer)> {
        self.table.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_proc_and_total() {
        let mut t = Timers::new();
        t.charge("a", 10.0);
        t.charge("b", 5.0);
        t.charge("a", 2.5);
        assert_eq!(t.get("a").unwrap().cycles, 12.5);
        assert_eq!(t.total_cycles(), 17.5);
    }

    #[test]
    fn scoped_cycles_sums_only_the_hotspot_set() {
        let mut t = Timers::new();
        t.charge("work1", 100.0);
        t.charge("work2", 50.0);
        t.charge("driver", 500.0);
        t.charge("kernel_w88x", 75.0); // wrapper: outside hotspot scope
        assert_eq!(t.scoped_cycles(["work1", "work2"]), 150.0);
        assert_eq!(t.total_cycles(), 725.0);
    }

    #[test]
    fn per_call_average() {
        let mut t = Timers::new();
        t.count_call("f");
        t.count_call("f");
        t.charge("f", 30.0);
        assert_eq!(t.get("f").unwrap().per_call(), 15.0);
        assert_eq!(ProcTimer::default().per_call(), 0.0);
    }

    #[test]
    fn missing_procs_contribute_zero_to_scope() {
        let t = Timers::new();
        assert_eq!(t.scoped_cycles(["nothing"]), 0.0);
    }
}
