//! # prose-interp
//!
//! Dynamic evaluation substrate: a mixed-precision-aware interpreter for the
//! `prose-fortran` AST plus an analytical performance model.
//!
//! The paper compiled each variant with ifort and ran it on Derecho under
//! MPI, measuring hotspot CPU time with GPTL. This crate substitutes both
//! halves of that loop:
//!
//! * **Numerics are real.** Every FP value is computed in the precision of
//!   the variable it flows through (`f32` or `f64` per the variant's
//!   declarations; literals are kind-generic as with promoted model builds),
//!   so rounding, convergence behaviour, overflow, and NaN production are
//!   genuine — an iterative kernel that fails to converge in single
//!   precision fails here for the same numerical reason it fails on real
//!   hardware.
//! * **Time is modeled.** Execution emits an event stream (FP operations by
//!   precision, array traffic by element size, conversions, call overhead,
//!   collective latency), and the [`cost`] model folds it into simulated
//!   cycles using a vectorization discount: a counted loop that is
//!   statically legal to vectorize ([`prose_analysis::vect`]) and stays
//!   precision-uniform at runtime is charged at SIMD rates (twice the f32
//!   throughput of f64 — the AVX-512 ratio the paper's speedups stem from);
//!   conversions or non-inlined calls inside a loop demote it to scalar
//!   cost. This reproduces the paper's observed phenomena: casting overhead
//!   from mixed-precision interprocedural data flow, inlining loss through
//!   wrappers, vectorization-hostile recurrences, and precision-insensitive
//!   `MPI_ALLREDUCE` latency.
//! * **Timers are GPTL-shaped.** Per-procedure exclusive cycles and call
//!   counts; a hotspot's time is the sum over its procedures, and wrapper
//!   procedures are *not* part of the hotspot set — conversion work at the
//!   hotspot boundary is invisible to hotspot-scoped timing (Figure 5) but
//!   fully visible to whole-model timing (Figure 7), exactly as in the
//!   paper.

pub mod absint;
pub mod cost;
pub mod ir;
pub mod lower;
pub mod machine;
pub mod run;
pub mod shadow;
pub mod template;
pub mod timers;
pub mod value;

pub use absint::{analyze_ir, analyze_variant, DEFAULT_MAX_STEPS};
pub use cost::CostParams;
pub use machine::DEADLINE_CHECK_INTERVAL;
pub use run::{
    run_ir, run_ir_shadow, run_program, run_program_shadow, OpCounts, RunConfig, RunError,
    RunOutcome, RunRecords,
};
pub use shadow::{CancellationEvent, NonFiniteOrigin, ShadowReport, VarShadow};
pub use template::IrTemplate;
pub use timers::{ProcTimer, Timers};
