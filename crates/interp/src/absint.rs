//! Abstract interpretation of the lowered IR: static value ranges and
//! round-off error bounds.
//!
//! This module is the IR-walking half of the `prose-analysis::absint`
//! subsystem (the domains live there; this crate depends on it, so the
//! walker lives here). [`analyze_ir`] over-approximates one variant's
//! shadow-mode execution: every abstract value carries the interval of the
//! fp64 *shadow* value plus a bound on `|primary − shadow|`, where the
//! primary runs at each slot's assigned precision ([`STy::Fp`], patched per
//! variant by [`crate::template::IrTemplate`]).
//!
//! Soundness contract (checked by `crates/analysis/tests/absint_sound.rs`):
//! for every run of the same IR that completes without a `RunError`, and for
//! every variable key in its [`crate::shadow::ShadowReport`], the observed
//! stored primaries lie in the reported `[lo, hi]` hull and the observed
//! `max_rel` is `≤` the reported `rel_err`. The analysis errs only toward
//! wider: binding conversions are always charged (covering both faithful
//! association and synthesized wrappers), rounding is charged even for
//! same-precision moves, and machine paths that would trap (`check_finite`,
//! kind mismatches, recursion limits) are allowed to continue abstractly —
//! a trapped run stores nothing further, so extra abstract stores only
//! widen the report.
//!
//! Loops with statically known trip counts are unrolled concretely under a
//! per-loop abstract-op allowance; everything else (unknown bounds,
//! `do while`, blown allowances) runs to a widening/narrowing fixpoint.
//! Calls are analyzed interprocedurally with a summary cache keyed by the
//! abstract arguments and globals; recursion past the machine's own stack
//! guard returns `⊤` (the machine errors there, so nothing is missed).
//! When the global step budget runs out the report is flagged
//! [`BoundReport::incomplete`] and every downstream verdict must degrade to
//! "undecided".

use std::collections::{BTreeMap, HashMap};

use prose_analysis::absint::{
    cancellation_kappa, unit_roundoff, AbsVal, BoundReport, CancelSite, Interval, VarBound, U64,
};
use prose_fortran::ast::{BinOp, FpPrecision, Intent, UnOp};
use prose_fortran::error::Result as FortResult;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::ProgramIndex;
use prose_fortran::Program;

use crate::ir::{
    IArg, IDim, IExpr, ILValue, IStmt, IntrinsicFn, IntrinsicSub, ProgramIR, STy, SlotRef,
};
use crate::template::IrTemplate;

/// Default global abstract-op budget.
pub const DEFAULT_MAX_STEPS: u64 = 2_000_000;
/// Per-loop allowance for concrete unrolling before falling back to the
/// widening fixpoint.
const UNROLL_OPS: u64 = 250_000;
/// Trip-count ceiling for concrete unrolling.
const UNROLL_MAX_TRIPS: i64 = 65_536;
/// Fixpoint rounds before widening kicks in, and the hard round cap.
const WIDEN_AFTER: u32 = 3;
const FIX_ROUND_CAP: u32 = 24;
/// Static cancellation-amplification threshold for reported sites,
/// matching the shadow guardrail's `CANCEL_LOST_BITS` and the range-driven
/// lints.
use prose_analysis::absint::CANCEL_KAPPA;
/// Scope marker for module-level slots (mirrors the shadow's scope space).
const GLOBAL_SCOPE: usize = usize::MAX;
/// The machine's recursion guard; past it the concrete run errors.
const CALL_DEPTH_LIMIT: usize = 64;
/// Summary-cache size cap.
const CACHE_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------------

/// One abstract slot. Arrays are summarized: a single element value joined
/// over every index, per-dimension extent intervals, and the total length.
#[derive(Debug, Clone, PartialEq)]
enum ASlot {
    Fp(AbsVal),
    Int(Interval),
    Bool,
    Str,
    FpArr {
        elem: AbsVal,
        dims: Vec<Interval>,
        len: Interval,
        prec: FpPrecision,
    },
    IntArr {
        elem: Interval,
        dims: Vec<Interval>,
        len: Interval,
    },
    /// Whole-array dummy bound to a module array: reads and writes resolve
    /// to the global slot, so direct-global and through-dummy accesses stay
    /// coherent without any aliasing havoc.
    AliasGlobal(usize),
}

/// An abstract expression value.
#[derive(Debug, Clone)]
enum AV {
    Fp(AbsVal),
    Int(Interval),
    Bool,
    Str,
}

#[derive(Debug, Clone)]
struct State {
    locals: Vec<ASlot>,
    globals: Vec<ASlot>,
}

/// Where an array access lands after alias resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stor {
    L(usize),
    G(usize),
}

/// Control-flow accumulators for the current procedure / loop nest.
struct Env {
    ret: Option<State>,
    loops: Vec<LoopAcc>,
}

#[derive(Default)]
struct LoopAcc {
    exit: Option<State>,
    cyc: Option<State>,
}

/// Why an abstract execution was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abort {
    /// Global budget exhausted: the whole analysis is incomplete.
    Budget,
    /// A per-loop unroll allowance tripped: retry that loop as a fixpoint.
    Unroll,
}

type W<T> = Result<T, Abort>;

/// Per-variable store accumulator (joined over every recorded store).
#[derive(Debug, Clone)]
struct Acc {
    hull: Interval,
    abs_err: f64,
    rel: f64,
}

impl Acc {
    fn update(&mut self, v: &AbsVal) {
        self.hull = self.hull.join(&v.primary_iv());
        self.abs_err = self.abs_err.max(v.err);
        self.rel = self.rel.max(v.rel_bound());
    }

    fn of(v: &AbsVal) -> Acc {
        Acc {
            hull: v.primary_iv(),
            abs_err: v.err,
            rel: v.rel_bound(),
        }
    }
}

type CacheKey = (usize, Vec<u64>);

struct CacheOut {
    exit: Option<(Vec<ASlot>, Vec<ASlot>)>,
    ret: Option<AV>,
}

// ---------------------------------------------------------------------------
// Walker
// ---------------------------------------------------------------------------

struct Walker<'a> {
    ir: &'a ProgramIR,
    steps: u64,
    budget: u64,
    /// Innermost-first stack of absolute step ceilings for unroll attempts.
    ceilings: Vec<u64>,
    depth: usize,
    vars: BTreeMap<(usize, usize), Acc>,
    records: BTreeMap<String, Acc>,
    cancels: BTreeMap<String, f64>,
    cache: HashMap<CacheKey, CacheOut>,
    cur_proc: usize,
    cur_line: u32,
    /// Recording suppression depth. While `> 0` (fixpoint iteration rounds),
    /// stores are not folded into the report: intermediate rounds can pass
    /// through havoced states that are not invariants. Each loop records via
    /// one final pass over its converged invariant instead.
    mute: u32,
}

/// Analyze one lowered variant. `max_steps` bounds the abstract work; pass
/// [`DEFAULT_MAX_STEPS`] unless you have a reason not to.
pub fn analyze_ir(ir: &ProgramIR, max_steps: u64) -> BoundReport {
    let mut w = Walker {
        ir,
        steps: 0,
        budget: max_steps.max(1),
        ceilings: Vec::new(),
        depth: 0,
        vars: BTreeMap::new(),
        records: BTreeMap::new(),
        cancels: BTreeMap::new(),
        cache: HashMap::new(),
        cur_proc: GLOBAL_SCOPE,
        cur_line: 0,
        mute: 0,
    };
    let incomplete = match w.run() {
        Ok(()) => false,
        Err(_) => true,
    };
    w.finish(incomplete)
}

/// Lower `program` under the candidate `map` (no wrappers — binding
/// conversions over-approximate them) and analyze the result.
pub fn analyze_variant(
    program: &Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
    inline_max_stmts: usize,
    max_steps: u64,
) -> FortResult<BoundReport> {
    let t = IrTemplate::new(program, index, inline_max_stmts)?;
    let ir = t.instantiate(map, &[], &HashMap::new())?;
    Ok(analyze_ir(&ir, max_steps))
}

impl<'a> Walker<'a> {
    // ---- bookkeeping ----------------------------------------------------

    fn bump(&mut self, n: u64) -> W<()> {
        self.steps += n;
        if self.steps > self.budget {
            return Err(Abort::Budget);
        }
        if let Some(&c) = self.ceilings.last() {
            if self.steps > c {
                return Err(Abort::Unroll);
            }
        }
        Ok(())
    }

    fn scope_name(&self, proc: usize) -> &str {
        if proc == GLOBAL_SCOPE {
            "@global"
        } else {
            &self.ir.procs[proc].name
        }
    }

    fn record_var(&mut self, proc: usize, slot: usize, v: &AbsVal) {
        if self.mute > 0 {
            return;
        }
        self.vars
            .entry((proc, slot))
            .and_modify(|a| a.update(v))
            .or_insert_with(|| Acc::of(v));
    }

    fn record_record(&mut self, key: &str, v: &AbsVal) {
        if self.mute > 0 {
            return;
        }
        self.records
            .entry(key.to_string())
            .and_modify(|a| a.update(v))
            .or_insert_with(|| Acc::of(v));
    }

    fn note_cancellation(&mut self, a: &Interval, b: &Interval) {
        if self.mute > 0 {
            return;
        }
        let k = cancellation_kappa(a, b);
        if k >= CANCEL_KAPPA && (a.max_abs() > 0.0 || b.max_abs() > 0.0) {
            let site = format!("{}:{}", self.scope_name(self.cur_proc), self.cur_line);
            let e = self.cancels.entry(site).or_insert(0.0);
            *e = e.max(k);
        }
    }

    fn finish(self, incomplete: bool) -> BoundReport {
        let mut vars: Vec<VarBound> = self
            .vars
            .iter()
            .map(|(&(proc, slot), acc)| {
                let name = if proc == GLOBAL_SCOPE {
                    format!("@global::{}", self.ir.globals[slot].name)
                } else {
                    let p = &self.ir.procs[proc];
                    format!("{}::{}", p.name, p.slots[slot].name)
                };
                VarBound {
                    name,
                    lo: acc.hull.lo,
                    hi: acc.hull.hi,
                    abs_err: acc.abs_err,
                    rel_err: acc.rel,
                }
            })
            .collect();
        let mut records: Vec<VarBound> = self
            .records
            .iter()
            .map(|(name, acc)| VarBound {
                name: name.clone(),
                lo: acc.hull.lo,
                hi: acc.hull.hi,
                abs_err: acc.abs_err,
                rel_err: acc.rel,
            })
            .collect();
        let by_rel = |a: &VarBound, b: &VarBound| {
            b.rel_err
                .total_cmp(&a.rel_err)
                .then_with(|| a.name.cmp(&b.name))
        };
        vars.sort_by(by_rel);
        records.sort_by(by_rel);
        let worst_rel = vars
            .iter()
            .chain(records.iter())
            .map(|v| v.rel_err)
            .fold(0.0_f64, f64::max);
        let mut cancellations: Vec<CancelSite> = self
            .cancels
            .into_iter()
            .map(|(site, kappa)| CancelSite { site, kappa })
            .collect();
        cancellations.sort_by(|a, b| {
            b.kappa
                .total_cmp(&a.kappa)
                .then_with(|| a.site.cmp(&b.site))
        });
        cancellations.truncate(64);
        BoundReport {
            vars,
            records,
            worst_rel,
            cancellations,
            incomplete,
            steps: self.steps,
        }
    }

    // ---- program entry --------------------------------------------------

    fn run(&mut self) -> W<()> {
        let ir = self.ir;
        let mut st = State {
            locals: Vec::new(),
            globals: ir.globals.iter().map(default_slot).collect(),
        };
        // Globals in declaration order: fixed-shape arrays, then scalar
        // initializers (recorded — the machine notes these stores).
        for (i, decl) in ir.globals.iter().enumerate() {
            if let Some(dims) = &decl.dims {
                if !decl.allocatable {
                    let (dims, len) = self.eval_dims(dims, &mut st)?;
                    st.globals[i] = fresh_array(decl, dims, len);
                }
            } else if let Some(init) = decl.init.clone() {
                let v = self.eval(&init, &mut st)?;
                self.assign_scalar(SlotRef::Global(i), v, &mut st, true)?;
            }
        }
        self.call_inner(ir.main_proc, &[], &mut st)?;
        Ok(())
    }

    // ---- calls ----------------------------------------------------------

    fn call_inner(&mut self, proc_id: usize, args: &[IArg], st: &mut State) -> W<Option<AV>> {
        self.bump(8)?;
        if self.depth >= CALL_DEPTH_LIMIT {
            // The machine's recursion guard errors here: no further stores.
            return Ok(Some(AV::Fp(AbsVal::top())));
        }
        let proc = &self.ir.procs[proc_id];

        // Bind arguments in order (argument expressions have effects).
        let mut locals: Vec<ASlot> = proc.slots.iter().map(default_slot).collect();
        let mut wbs: Vec<(usize, ILValue)> = Vec::new();
        let mut arr_outs: Vec<(usize, usize)> = Vec::new(); // (param slot, caller local)
        let mut seen_copy: Vec<usize> = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            let slot_idx = proc.params[i];
            let decl = &proc.slots[slot_idx];
            match arg {
                IArg::Value(e) => {
                    let v = self.eval(e, st)?;
                    locals[slot_idx] = bind_scalar(decl, v);
                }
                IArg::ScalarRef(lv) => {
                    let v = self.read_lv(lv, st)?;
                    locals[slot_idx] = bind_scalar(decl, v);
                    if decl.intent != Some(Intent::In) {
                        wbs.push((slot_idx, lv.clone()));
                    }
                }
                IArg::ArrayRef(r) => {
                    let stor = self.resolve_arr(st, *r);
                    match stor {
                        Stor::G(g) => locals[slot_idx] = ASlot::AliasGlobal(g),
                        Stor::L(l) => {
                            if seen_copy.contains(&l) {
                                // The machine shares one handle; a copied
                                // summary would lose cross-param writes.
                                havoc_slot(&mut st.locals[l]);
                            }
                            seen_copy.push(l);
                            locals[slot_idx] = bind_array(decl, &st.locals[l]);
                            arr_outs.push((slot_idx, l));
                        }
                    }
                }
            }
        }

        // Summary cache: behavior is a function of the abstract arguments
        // and globals (locals init below is deterministic from them).
        let key: CacheKey = (proc_id, encode_state(&locals, &st.globals));
        if let Some(hit) = self.cache.get(&key) {
            let ret = hit.ret.clone();
            let exit = hit.exit.as_ref().map(|(l, g)| (l.clone(), g.clone()));
            self.bump(1)?;
            match exit {
                None => return Ok(ret), // callee never returns; path is dead concretely
                Some((exit_locals, exit_globals)) => {
                    st.globals = exit_globals;
                    self.apply_outs(&exit_locals, &wbs, &arr_outs, proc_id, st)?;
                    return Ok(ret);
                }
            }
        }

        // Initialize non-dummy locals (shapes may read dummies).
        let saved_proc = self.cur_proc;
        self.cur_proc = proc_id;
        self.depth += 1;
        let mut callee = State {
            locals,
            globals: std::mem::take(&mut st.globals),
        };
        let mut init_abort = None;
        for (i, decl) in proc.slots.iter().enumerate() {
            if decl.is_dummy {
                continue;
            }
            if let Some(dims) = &decl.dims {
                if !decl.allocatable {
                    match self.eval_dims(dims, &mut callee) {
                        Ok((dims, len)) => callee.locals[i] = fresh_array(decl, dims, len),
                        Err(a) => {
                            init_abort = Some(a);
                            break;
                        }
                    }
                }
            } else if let Some(init) = decl.init.clone() {
                // Bindings and local inits are not `note_var`ed.
                match self.eval(&init, &mut callee) {
                    Ok(v) => callee.locals[i] = bind_scalar(decl, v),
                    Err(a) => {
                        init_abort = Some(a);
                        break;
                    }
                }
            }
        }

        let body = proc.body.clone();
        let result = match init_abort {
            Some(a) => Err(a),
            None => {
                let mut env = Env {
                    ret: None,
                    loops: Vec::new(),
                };
                self.exec_block(&body, callee.clone(), &mut env)
                    .map(|fall| join_opt(fall, env.ret))
            }
        };
        self.depth -= 1;
        self.cur_proc = saved_proc;

        let exit = match result {
            Ok(e) => e,
            Err(a) => {
                // Restore the caller's globals before propagating.
                st.globals = callee.globals;
                return Err(a);
            }
        };

        let proc = &self.ir.procs[proc_id];
        let (ret, out) = match exit {
            None => {
                // All paths stop or trap: the caller's continuation is
                // concretely unreachable. Restore pre-call globals.
                st.globals = callee.globals;
                (Some(AV::Fp(AbsVal::top())), None)
            }
            Some(ex) => {
                let ret = if proc.is_function {
                    let rs = proc.result_slot.expect("function result slot");
                    Some(slot_value(&ex, &ex.locals[rs]))
                } else {
                    Some(AV::Bool)
                };
                st.globals = ex.globals.clone();
                self.apply_outs(&ex.locals, &wbs, &arr_outs, proc_id, st)?;
                (ret, Some((ex.locals, ex.globals)))
            }
        };
        // Only unmuted executions populate the cache: a muted call records
        // nothing, so replaying its summary later would silently skip the
        // callee's store recording.
        if self.mute == 0 && self.cache.len() < CACHE_CAP {
            self.cache.insert(
                key,
                CacheOut {
                    exit: out,
                    ret: ret.clone(),
                },
            );
        }
        Ok(ret)
    }

    /// Scalar copy-outs (recorded stores, like the machine's writebacks)
    /// and whole-array copy-outs (strong updates, unrecorded).
    fn apply_outs(
        &mut self,
        exit_locals: &[ASlot],
        wbs: &[(usize, ILValue)],
        arr_outs: &[(usize, usize)],
        proc_id: usize,
        st: &mut State,
    ) -> W<()> {
        for (slot_idx, lv) in wbs {
            let v = slot_value_raw(&exit_locals[*slot_idx]);
            self.write_lv(lv, v, st, true)?;
        }
        for (slot_idx, caller_local) in arr_outs {
            let mut out = exit_locals[*slot_idx].clone();
            // A converting writeback (wrapper path) re-rounds at the
            // caller's kind; same-kind writeback is exact.
            if let (
                ASlot::FpArr { elem, prec, .. },
                ASlot::FpArr {
                    prec: caller_prec, ..
                },
            ) = (&mut out, &st.locals[*caller_local])
            {
                if prec != caller_prec {
                    *elem = elem.store(*caller_prec);
                    *prec = *caller_prec;
                }
            }
            if !matches!(out, ASlot::AliasGlobal(_)) {
                st.locals[*caller_local] = out;
            }
        }
        let _ = proc_id;
        Ok(())
    }

    // ---- statements -----------------------------------------------------

    fn exec_block(&mut self, body: &[IStmt], mut st: State, env: &mut Env) -> W<Option<State>> {
        for s in body {
            match self.exec_stmt(s, st, env)? {
                Some(next) => st = next,
                None => return Ok(None),
            }
        }
        Ok(Some(st))
    }

    fn exec_stmt(&mut self, s: &IStmt, mut st: State, env: &mut Env) -> W<Option<State>> {
        self.bump(1)?;
        match s {
            IStmt::AssignScalar { slot, value, line } => {
                self.cur_line = *line;
                let v = self.eval(value, &mut st)?;
                self.assign_scalar(*slot, v, &mut st, true)?;
                Ok(Some(st))
            }
            IStmt::AssignElem {
                slot,
                indices,
                value,
                line,
            } => {
                self.cur_line = *line;
                for ix in indices {
                    self.eval(ix, &mut st)?;
                }
                let v = self.eval(value, &mut st)?;
                self.elem_store(*slot, v, &mut st, true)?;
                Ok(Some(st))
            }
            IStmt::AssignBroadcast { slot, value, line } => {
                self.cur_line = *line;
                let v = self.eval(value, &mut st)?;
                let stor = self.resolve_arr(&st, *slot);
                match arr_mut(&mut st, stor) {
                    ASlot::FpArr { elem, prec, .. } => {
                        *elem = store_fp(to_fp(&v, Some(*prec)), *prec);
                    }
                    ASlot::IntArr { elem, .. } => {
                        *elem = to_int(&v);
                    }
                    other => havoc_slot(other),
                }
                Ok(Some(st))
            }
            IStmt::AssignArrayCopy { dst, src, line } => {
                self.cur_line = *line;
                let sstor = self.resolve_arr(&st, *src);
                let dstor = self.resolve_arr(&st, *dst);
                if sstor != dstor {
                    let srcv = arr_mut(&mut st, sstor).clone();
                    let d = arr_mut(&mut st, dstor);
                    match (&srcv, &mut *d) {
                        (
                            ASlot::FpArr {
                                elem: se,
                                dims: sd,
                                len: sl,
                                prec: sp,
                            },
                            ASlot::FpArr {
                                elem,
                                dims,
                                len,
                                prec,
                            },
                        ) => {
                            *elem = if sp == prec { *se } else { se.store(*prec) };
                            *dims = sd.clone();
                            *len = *sl;
                        }
                        (
                            ASlot::IntArr {
                                elem: se,
                                dims: sd,
                                len: sl,
                            },
                            ASlot::IntArr { elem, dims, len },
                        ) => {
                            *elem = *se;
                            *dims = sd.clone();
                            *len = *sl;
                        }
                        (_, d) => havoc_slot(d),
                    }
                }
                Ok(Some(st))
            }
            IStmt::If {
                arms,
                else_body,
                line,
            } => {
                self.cur_line = *line;
                let mut fall: Option<State> = None;
                for (cond, body) in arms {
                    self.eval(cond, &mut st)?;
                    let taken = self.exec_block(body, st.clone(), env)?;
                    fall = join_opt(fall, taken);
                }
                let e = self.exec_block(else_body, st, env)?;
                Ok(join_opt(fall, e))
            }
            IStmt::Do {
                var,
                start,
                end,
                step,
                body,
                line,
                ..
            } => {
                self.cur_line = *line;
                let s_iv = to_int(&self.eval(start, &mut st)?);
                let e_iv = to_int(&self.eval(end, &mut st)?);
                let stp_iv = match step {
                    Some(x) => to_int(&self.eval(x, &mut st)?),
                    None => Interval::point(1.0),
                };
                if let (Some(s0), Some(e0), Some(sp)) = (
                    int_singleton(&s_iv),
                    int_singleton(&e_iv),
                    int_singleton(&stp_iv),
                ) {
                    if sp != 0 {
                        let trips = if sp > 0 {
                            (e0 - s0 + sp).max(0) / sp
                        } else {
                            (s0 - e0 - sp).max(0) / -sp
                        };
                        if trips <= UNROLL_MAX_TRIPS {
                            let snapshot = st.clone();
                            let ceiling = self
                                .ceilings
                                .last()
                                .copied()
                                .unwrap_or(u64::MAX)
                                .min(self.steps.saturating_add(UNROLL_OPS));
                            self.ceilings.push(ceiling);
                            let attempt = self.unroll_do(*var, s0, e0, sp, body, st, env);
                            self.ceilings.pop();
                            match attempt {
                                Ok(out) => return Ok(out),
                                Err(Abort::Unroll) => st = snapshot,
                                Err(a) => return Err(a),
                            }
                        }
                    }
                }
                // Fixpoint fallback: the loop variable ranges over the hull
                // of the bounds, inflated one step past the end.
                let stp_mag = stp_iv.abs().hi.max(1.0);
                let hull = Interval::new(
                    s_iv.lo.min(e_iv.lo) - stp_mag,
                    s_iv.hi.max(e_iv.hi) + stp_mag,
                );
                self.fix_loop(st, Some((*var, hull)), None, body, env)
            }
            IStmt::DoWhile { cond, body, line } => {
                self.cur_line = *line;
                self.fix_loop(st, None, Some(cond), body, env)
            }
            IStmt::CallSub { proc, args, line } => {
                self.cur_line = *line;
                self.call_inner(*proc, args, &mut st)?;
                Ok(Some(st))
            }
            IStmt::CallIntrinsicSub {
                f,
                name_arg,
                args,
                line,
            } => {
                self.cur_line = *line;
                self.intrinsic_sub(*f, name_arg.as_deref(), args, &mut st)?;
                Ok(Some(st))
            }
            IStmt::Return => {
                env.ret = join_opt(env.ret.take(), Some(st));
                Ok(None)
            }
            IStmt::Exit => {
                if let Some(la) = env.loops.last_mut() {
                    la.exit = join_opt(la.exit.take(), Some(st));
                }
                Ok(None)
            }
            IStmt::Cycle => {
                if let Some(la) = env.loops.last_mut() {
                    la.cyc = join_opt(la.cyc.take(), Some(st));
                }
                Ok(None)
            }
            IStmt::Print { items, line } => {
                self.cur_line = *line;
                for e in items {
                    self.eval(e, &mut st)?;
                }
                Ok(Some(st))
            }
            IStmt::Stop { .. } => Ok(None),
            IStmt::Allocate { slot, dims, line } => {
                self.cur_line = *line;
                let (dims, len) = self.eval_dims(dims, &mut st)?;
                let decl = self.slot_decl(*slot).clone();
                let stor = self.resolve_arr(&st, *slot);
                *arr_mut(&mut st, stor) = fresh_array(&decl, dims, len);
                Ok(Some(st))
            }
            IStmt::Deallocate { .. } => Ok(Some(st)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn unroll_do(
        &mut self,
        var: SlotRef,
        s0: i64,
        e0: i64,
        sp: i64,
        body: &[IStmt],
        mut st: State,
        env: &mut Env,
    ) -> W<Option<State>> {
        let mut exit_acc: Option<State> = None;
        let mut i = s0;
        let mut dead = false;
        loop {
            if (sp > 0 && i > e0) || (sp < 0 && i < e0) {
                break;
            }
            self.bump(2)?;
            self.set_int(var, Interval::point(i as f64), &mut st);
            env.loops.push(LoopAcc::default());
            let fall = self.exec_block(body, st.clone(), env);
            let la = env.loops.pop().unwrap_or_default();
            let fall = fall?;
            exit_acc = join_opt(exit_acc, la.exit);
            match join_opt(fall, la.cyc) {
                Some(next) => st = next,
                None => {
                    dead = true;
                    break;
                }
            }
            i += sp;
        }
        if dead {
            return Ok(exit_acc);
        }
        self.set_int(var, Interval::point(i as f64), &mut st);
        Ok(join_opt(Some(st), exit_acc))
    }

    fn fix_loop(
        &mut self,
        entry: State,
        var: Option<(SlotRef, Interval)>,
        cond: Option<&IExpr>,
        body: &[IStmt],
        env: &mut Env,
    ) -> W<Option<State>> {
        let mut acc = entry.clone();
        let mut exit_acc: Option<State> = None;
        let mut rounds: u32 = 0;
        // Iteration rounds are muted: they may traverse non-invariant
        // intermediate states (and, past the round cap, a havoced one), so
        // nothing they do may enter the report.
        self.mute += 1;
        let fix = (|| -> W<()> {
            loop {
                self.bump(4)?;
                let mut stx = acc.clone();
                if let Some((v, hull)) = &var {
                    self.set_int(*v, *hull, &mut stx);
                }
                if let Some(c) = cond {
                    self.eval(c, &mut stx)?;
                }
                env.loops.push(LoopAcc::default());
                let fall = self.exec_block(body, stx, env);
                let la = env.loops.pop().unwrap_or_default();
                let Some(out) = join_opt(fall?, la.cyc) else {
                    break;
                };
                let next = join_state(&acc, &out);
                if state_le(&next, &acc) {
                    break;
                }
                rounds += 1;
                acc = if rounds > WIDEN_AFTER {
                    widen_state(&next, &acc)
                } else {
                    next
                };
                if rounds > FIX_ROUND_CAP {
                    havoc_state(&mut acc);
                    break;
                }
            }
            Ok(())
        })();
        self.mute -= 1;
        fix?;
        // Final recording pass from the converged invariant: over-approximates
        // every concrete iteration's stores and exits, and doubles as one
        // narrowing step (adopt the tighter result if it still covers entry).
        {
            let mut stx = acc.clone();
            if let Some((v, hull)) = &var {
                self.set_int(*v, *hull, &mut stx);
            }
            if let Some(c) = cond {
                self.eval(c, &mut stx)?;
            }
            env.loops.push(LoopAcc::default());
            let fall = self.exec_block(body, stx, env);
            let la = env.loops.pop().unwrap_or_default();
            let fall = fall?;
            exit_acc = join_opt(exit_acc, la.exit);
            if let Some(out) = join_opt(fall, la.cyc) {
                let cand = join_state(&entry, &out);
                if state_le(&cand, &acc) {
                    acc = cand;
                }
            }
        }
        let mut post = acc;
        if let Some((v, hull)) = &var {
            self.set_int(*v, *hull, &mut post);
        }
        Ok(join_opt(Some(post), exit_acc))
    }

    fn intrinsic_sub(
        &mut self,
        f: IntrinsicSub,
        name_arg: Option<&str>,
        args: &[IArg],
        st: &mut State,
    ) -> W<()> {
        match f {
            IntrinsicSub::ProseRecord => {
                let v = match &args[0] {
                    IArg::Value(e) => self.eval(e, st)?,
                    _ => AV::Fp(AbsVal::top()),
                };
                let key = name_arg.unwrap_or("unnamed").to_string();
                let fv = to_fp(&v, None);
                self.record_record(&key, &fv);
                Ok(())
            }
            IntrinsicSub::ProseRecordArray => {
                let key = name_arg.unwrap_or("unnamed").to_string();
                let v = match &args[0] {
                    IArg::ArrayRef(r) => {
                        let stor = self.resolve_arr(st, *r);
                        match arr_mut(st, stor) {
                            ASlot::FpArr { elem, .. } => *elem,
                            _ => AbsVal::top(),
                        }
                    }
                    _ => AbsVal::top(),
                };
                self.record_record(&key, &v);
                Ok(())
            }
            IntrinsicSub::MpiAllreduceSum | IntrinsicSub::MpiAllreduceMax => {
                // One logical rank: identity on the data.
                let v = match &args[0] {
                    IArg::Value(e) => self.eval(e, st)?,
                    _ => AV::Fp(AbsVal::top()),
                };
                if let Some(IArg::ScalarRef(lv)) = args.get(1) {
                    self.write_lv(lv, v, st, true)?;
                }
                Ok(())
            }
        }
    }

    // ---- stores and loads -----------------------------------------------

    fn slot_decl(&self, r: SlotRef) -> &crate::ir::SlotDecl {
        match r {
            SlotRef::Local(i) => &self.ir.procs[self.cur_proc].slots[i],
            SlotRef::Global(i) => &self.ir.globals[i],
        }
    }

    fn assign_scalar(&mut self, r: SlotRef, v: AV, st: &mut State, record: bool) -> W<()> {
        self.bump(1)?;
        let decl_ty = self.slot_decl(r).ty;
        let stored = match decl_ty {
            STy::Fp(p) => {
                let fv = store_fp(to_fp(&v, Some(p)), p);
                if record {
                    match r {
                        SlotRef::Local(i) => self.record_var(self.cur_proc, i, &fv),
                        SlotRef::Global(i) => self.record_var(GLOBAL_SCOPE, i, &fv),
                    }
                }
                ASlot::Fp(fv)
            }
            STy::Int => ASlot::Int(trunc_hull(&to_fp_primary(&v))),
            STy::Bool => ASlot::Bool,
            STy::Str => ASlot::Str,
        };
        match r {
            SlotRef::Local(i) => st.locals[i] = stored,
            SlotRef::Global(i) => st.globals[i] = stored,
        }
        Ok(())
    }

    /// Weak (joining) element store, recorded like the machine's `note_var`.
    fn elem_store(&mut self, r: SlotRef, v: AV, st: &mut State, record: bool) -> W<()> {
        self.bump(1)?;
        let stor = self.resolve_arr(st, r);
        let mut rec: Option<AbsVal> = None;
        match arr_mut(st, stor) {
            ASlot::FpArr { elem, prec, .. } => {
                let fv = store_fp(to_fp(&v, Some(*prec)), *prec);
                *elem = elem.join(&fv);
                rec = Some(fv);
            }
            ASlot::IntArr { elem, .. } => {
                *elem = elem.join(&to_int(&v));
            }
            other => havoc_slot(other),
        }
        if let (Some(fv), true) = (rec, record) {
            match stor {
                Stor::L(i) => self.record_var(self.cur_proc, i, &fv),
                Stor::G(i) => self.record_var(GLOBAL_SCOPE, i, &fv),
            }
        }
        Ok(())
    }

    fn set_int(&mut self, r: SlotRef, iv: Interval, st: &mut State) {
        match r {
            SlotRef::Local(i) => st.locals[i] = ASlot::Int(iv),
            SlotRef::Global(i) => st.globals[i] = ASlot::Int(iv),
        }
    }

    fn resolve_arr(&self, st: &State, r: SlotRef) -> Stor {
        match r {
            SlotRef::Global(g) => Stor::G(g),
            SlotRef::Local(i) => match st.locals[i] {
                ASlot::AliasGlobal(g) => Stor::G(g),
                _ => Stor::L(i),
            },
        }
    }

    fn read_lv(&mut self, lv: &ILValue, st: &mut State) -> W<AV> {
        match lv {
            ILValue::Scalar(r) => {
                let slot = match r {
                    SlotRef::Local(i) => st.locals[*i].clone(),
                    SlotRef::Global(i) => st.globals[*i].clone(),
                };
                Ok(slot_value(st, &slot))
            }
            ILValue::Elem { slot, indices } => {
                for ix in indices {
                    self.eval(ix, st)?;
                }
                let stor = self.resolve_arr(st, *slot);
                Ok(match arr_mut(st, stor) {
                    ASlot::FpArr { elem, .. } => AV::Fp(*elem),
                    ASlot::IntArr { elem, .. } => AV::Int(*elem),
                    _ => AV::Fp(AbsVal::top()),
                })
            }
        }
    }

    fn write_lv(&mut self, lv: &ILValue, v: AV, st: &mut State, record: bool) -> W<()> {
        match lv {
            ILValue::Scalar(r) => self.assign_scalar(*r, v, st, record),
            ILValue::Elem { slot, indices } => {
                for ix in indices {
                    self.eval(ix, st)?;
                }
                self.elem_store(*slot, v, st, record)
            }
        }
    }

    fn eval_dims(&mut self, dims: &[IDim], st: &mut State) -> W<(Vec<Interval>, Interval)> {
        let mut extents = Vec::with_capacity(dims.len());
        for d in dims {
            let e = match d {
                IDim::Explicit { lower, upper } => {
                    let lo = match lower {
                        Some(l) => to_int(&self.eval(l, st)?),
                        None => Interval::point(1.0),
                    };
                    let hi = to_int(&self.eval(upper, st)?);
                    let e = hi.sub(&lo).add(&Interval::point(1.0));
                    Interval::new(e.lo.max(0.0), e.hi.max(0.0))
                }
                IDim::Deferred => Interval::new(0.0, f64::INFINITY),
            };
            extents.push(e);
        }
        let mut len = Interval::point(1.0);
        for e in &extents {
            len = len.mul(e);
        }
        len = Interval::new(len.lo.max(0.0), len.hi.max(0.0));
        Ok((extents, len))
    }

    // ---- expressions ----------------------------------------------------

    fn eval(&mut self, e: &IExpr, st: &mut State) -> W<AV> {
        self.bump(1)?;
        Ok(match e {
            IExpr::RealLit(x) => AV::Fp(AbsVal::lit(*x)),
            IExpr::IntLit(i) => AV::Int(int_point(*i)),
            IExpr::BoolLit(_) => AV::Bool,
            IExpr::StrLit(_) => AV::Str,
            IExpr::LoadScalar(r) => {
                let slot = match r {
                    SlotRef::Local(i) => st.locals[*i].clone(),
                    SlotRef::Global(i) => st.globals[*i].clone(),
                };
                slot_value(st, &slot)
            }
            IExpr::LoadElem { slot, indices } => {
                for ix in indices {
                    self.eval(ix, st)?;
                }
                let stor = self.resolve_arr(st, *slot);
                match arr_mut(st, stor) {
                    ASlot::FpArr { elem, .. } => AV::Fp(*elem),
                    ASlot::IntArr { elem, .. } => AV::Int(*elem),
                    _ => AV::Fp(AbsVal::top()),
                }
            }
            IExpr::CallFun { proc, args } => self
                .call_inner(*proc, args, st)?
                .unwrap_or(AV::Fp(AbsVal::top())),
            IExpr::Intrinsic { f, args } => self.intrinsic(*f, args, st)?,
            IExpr::SizeOf { slot, dim } => {
                let d = match dim {
                    Some(e) => Some(to_int(&self.eval(e, st)?)),
                    None => None,
                };
                let stor = self.resolve_arr(st, *slot);
                let (dims, len) = match arr_mut(st, stor) {
                    ASlot::FpArr { dims, len, .. } | ASlot::IntArr { dims, len, .. } => {
                        (dims.clone(), *len)
                    }
                    _ => (Vec::new(), Interval::new(0.0, f64::INFINITY)),
                };
                match d {
                    None => AV::Int(len),
                    Some(di) => match int_singleton(&di) {
                        Some(k) if k >= 1 && (k as usize) <= dims.len() => {
                            AV::Int(dims[(k - 1) as usize])
                        }
                        _ => {
                            let mut hull: Option<Interval> = None;
                            for e in &dims {
                                hull = Some(match hull {
                                    None => *e,
                                    Some(h) => h.join(e),
                                });
                            }
                            AV::Int(hull.unwrap_or_else(|| Interval::new(0.0, f64::INFINITY)))
                        }
                    },
                }
            }
            IExpr::Reduce { f, slot } => {
                let stor = self.resolve_arr(st, *slot);
                let (elem, len, prec) = match arr_mut(st, stor) {
                    ASlot::FpArr {
                        elem, len, prec, ..
                    } => (*elem, *len, *prec),
                    _ => return Ok(AV::Fp(AbsVal::top())),
                };
                AV::Fp(reduce_fp(*f, &elem, &len, prec))
            }
            IExpr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs, st)?;
                let b = self.eval(rhs, st)?;
                if op.is_comparison() || op.is_logical() {
                    AV::Bool
                } else {
                    self.arith(*op, a, b, rhs)
                }
            }
            IExpr::Un { op, operand } => {
                let v = self.eval(operand, st)?;
                match op {
                    UnOp::Not => AV::Bool,
                    UnOp::Plus => v,
                    UnOp::Neg => match v {
                        AV::Int(iv) => AV::Int(iv.neg()),
                        AV::Fp(f) => AV::Fp(f.neg()),
                        other => other,
                    },
                }
            }
        })
    }

    fn arith(&mut self, op: BinOp, a: AV, b: AV, rhs: &IExpr) -> AV {
        if let (AV::Int(x), AV::Int(y)) = (&a, &b) {
            return AV::Int(int_bin(op, x, y, rhs));
        }
        // Mixed: integers convert at the FP side's working precision.
        let fb = to_fp_as_operand(&b, &a);
        let fa = to_fp_as_operand(&a, &b);
        match op {
            BinOp::Add => {
                self.note_cancellation(&fa.iv, &fb.iv.neg());
                AV::Fp(fa.add(&fb))
            }
            BinOp::Sub => {
                self.note_cancellation(&fa.iv, &fb.iv);
                AV::Fp(fa.sub(&fb))
            }
            BinOp::Mul => AV::Fp(fa.mul(&fb)),
            BinOp::Div => AV::Fp(fa.div(&fb)),
            BinOp::Pow => AV::Fp(fp_pow(&fa, &fb, rhs)),
            _ => AV::Fp(AbsVal::top()),
        }
    }

    fn intrinsic(&mut self, f: IntrinsicFn, args: &[IExpr], st: &mut State) -> W<AV> {
        use IntrinsicFn::*;
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, st)?);
        }
        Ok(match f {
            Abs => match &vals[0] {
                AV::Int(iv) => AV::Int(iv.abs()),
                v => AV::Fp(to_fp(v, None).abs()),
            },
            Sqrt => AV::Fp(math_arg(&vals[0]).sqrt()),
            Exp => AV::Fp(math_arg(&vals[0]).exp()),
            Log => AV::Fp(math_arg(&vals[0]).ln()),
            Log10 => {
                let v = math_arg(&vals[0]);
                if v.iv.lo > 0.0 {
                    let iv = mono_iv(&v.iv, f64::log10);
                    let lo_primary = v.iv.lo - v.err;
                    let lip = if lo_primary > 0.0 {
                        1.0 / (lo_primary * std::f64::consts::LN_10)
                    } else {
                        f64::INFINITY
                    };
                    AV::Fp(v.lipschitz(iv, lip))
                } else {
                    AV::Fp(AbsVal {
                        iv: Interval::top(),
                        err: f64::INFINITY,
                        prec: v.prec,
                    })
                }
            }
            Sin => AV::Fp(math_arg(&vals[0]).sin()),
            Cos => AV::Fp(math_arg(&vals[0]).cos()),
            Tan => AV::Fp(AbsVal {
                iv: Interval::top(),
                err: f64::INFINITY,
                prec: math_arg(&vals[0]).prec,
            }),
            Atan => {
                let v = math_arg(&vals[0]);
                AV::Fp(v.lipschitz(mono_iv(&v.iv, f64::atan), 1.0))
            }
            Tanh => {
                let v = math_arg(&vals[0]);
                AV::Fp(v.lipschitz(mono_iv(&v.iv, f64::tanh), 1.0))
            }
            Atan2 => {
                let a = math_arg(&vals[0]);
                let b = math_arg(&vals[1]);
                if b.primary_iv().lo > 0.0 {
                    let q = a.div(&b);
                    AV::Fp(q.lipschitz(mono_iv(&q.iv, f64::atan), 1.0))
                } else {
                    AV::Fp(AbsVal {
                        iv: Interval::new(-3.15, 3.15),
                        err: f64::INFINITY,
                        prec: prose_analysis::absint::promote(a.prec, b.prec),
                    })
                }
            }
            Mod => match (&vals[0], &vals[1]) {
                (AV::Int(x), AV::Int(y)) => {
                    let m = x.max_abs().min(y.max_abs());
                    AV::Int(if x.lo >= 0.0 {
                        Interval::new(0.0, m)
                    } else {
                        Interval::new(-m, m)
                    })
                }
                (x, y) => {
                    let fx = to_fp_as_operand(x, y);
                    let fy = to_fp_as_operand(y, x);
                    let m = fx.iv.max_abs().min(fy.iv.max_abs());
                    let err = if fx.err == 0.0 && fy.err == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    };
                    AV::Fp(AbsVal {
                        iv: Interval::new(-m, m),
                        err,
                        prec: prose_analysis::absint::promote(fx.prec, fy.prec),
                    })
                }
            },
            Sign => match (&vals[0], &vals[1]) {
                (AV::Int(x), AV::Int(y)) => {
                    let m = x.max_abs();
                    AV::Int(if y.lo > 0.0 {
                        x.abs()
                    } else if y.hi < 0.0 {
                        x.abs().neg()
                    } else {
                        Interval::new(-m, m)
                    })
                }
                (x, y) => {
                    let fx = to_fp_as_operand(x, y);
                    let fy = to_fp_as_operand(y, x);
                    let prec = prose_analysis::absint::promote(fx.prec, fy.prec);
                    let byv = fy.primary_iv();
                    if byv.lo > 0.0 {
                        AV::Fp(AbsVal { prec, ..fx.abs() })
                    } else if byv.hi < 0.0 {
                        AV::Fp(AbsVal {
                            prec,
                            ..fx.abs().neg()
                        })
                    } else {
                        // The primary and shadow may disagree on the sign.
                        let m = fx.iv.max_abs();
                        AV::Fp(AbsVal {
                            iv: Interval::new(-m, m),
                            err: if fx.err.is_finite() && m.is_finite() {
                                fx.err + 2.0 * m
                            } else {
                                f64::INFINITY
                            },
                            prec,
                        })
                    }
                }
            },
            Max | Min => {
                let mut acc = vals[0].clone();
                for v in &vals[1..] {
                    acc = match (&acc, v) {
                        (AV::Int(x), AV::Int(y)) => {
                            AV::Int(if f == Max { x.max(y) } else { x.min(y) })
                        }
                        (x, y) => {
                            let fx = to_fp_as_operand(x, y);
                            let fy = to_fp_as_operand(y, x);
                            AV::Fp(if f == Max { fx.max(&fy) } else { fx.min(&fy) })
                        }
                    };
                }
                acc
            }
            Real(k) => AV::Fp(convert_fp(&vals[0], k.unwrap_or(FpPrecision::Single))),
            Dble => AV::Fp(convert_fp(&vals[0], FpPrecision::Double)),
            Sngl => AV::Fp(convert_fp(&vals[0], FpPrecision::Single)),
            Int => AV::Int(trunc_hull(&to_fp_primary(&vals[0]))),
            Nint => AV::Int(round_hull(&to_fp_primary(&vals[0]))),
            Floor => AV::Int(floor_hull(&to_fp_primary(&vals[0]))),
            Epsilon | Huge | Tiny => {
                let p = match &vals[0] {
                    AV::Fp(v) => v.prec.unwrap_or(FpPrecision::Double),
                    _ => FpPrecision::Double,
                };
                let x = match (f, p) {
                    (Epsilon, FpPrecision::Single) => f32::EPSILON as f64,
                    (Epsilon, FpPrecision::Double) => f64::EPSILON,
                    (Huge, FpPrecision::Single) => f32::MAX as f64,
                    (Huge, FpPrecision::Double) => f64::MAX,
                    (Tiny, FpPrecision::Single) => f32::MIN_POSITIVE as f64,
                    (Tiny, FpPrecision::Double) => f64::MIN_POSITIVE,
                    _ => unreachable!(),
                };
                // Environment inquiry: the shadow snaps to the primary.
                AV::Fp(AbsVal::exact(x, p))
            }
            Isnan => AV::Bool,
            Size | Sum | Maxval | Minval => AV::Fp(AbsVal::top()),
        })
    }
}

// ---------------------------------------------------------------------------
// Slot and value helpers
// ---------------------------------------------------------------------------

fn default_slot(decl: &crate::ir::SlotDecl) -> ASlot {
    match (decl.ty, &decl.dims) {
        (STy::Fp(p), None) => ASlot::Fp(AbsVal::exact(0.0, p)),
        (STy::Int, None) => ASlot::Int(Interval::point(0.0)),
        (STy::Bool, None) => ASlot::Bool,
        (STy::Str, None) => ASlot::Str,
        (STy::Fp(p), Some(dims)) => ASlot::FpArr {
            elem: AbsVal::exact(0.0, p),
            dims: vec![Interval::new(0.0, f64::INFINITY); dims.len()],
            len: Interval::new(0.0, f64::INFINITY),
            prec: p,
        },
        (STy::Int, Some(dims)) => ASlot::IntArr {
            elem: Interval::point(0.0),
            dims: vec![Interval::new(0.0, f64::INFINITY); dims.len()],
            len: Interval::new(0.0, f64::INFINITY),
        },
        (_, Some(_)) => ASlot::Str,
    }
}

fn fresh_array(decl: &crate::ir::SlotDecl, dims: Vec<Interval>, len: Interval) -> ASlot {
    match decl.ty {
        STy::Fp(p) => ASlot::FpArr {
            elem: AbsVal::exact(0.0, p),
            dims,
            len,
            prec: p,
        },
        STy::Int => ASlot::IntArr {
            elem: Interval::point(0.0),
            dims,
            len,
        },
        _ => ASlot::Str,
    }
}

/// Bind a scalar value to a dummy/local declaration (conversion charged,
/// store not recorded — matches the machine's `convert_to_slot` path and
/// over-approximates synthesized wrappers for mismatched kinds).
fn bind_scalar(decl: &crate::ir::SlotDecl, v: AV) -> ASlot {
    match decl.ty {
        STy::Fp(p) => ASlot::Fp(store_fp(to_fp(&v, Some(p)), p)),
        STy::Int => ASlot::Int(trunc_hull(&to_fp_primary(&v))),
        STy::Bool => ASlot::Bool,
        STy::Str => ASlot::Str,
    }
}

/// Bind a whole-array actual to an array dummy. Same-kind association is
/// exact sharing (modeled copy-in/copy-out); a kind mismatch models the
/// wrapper's converting copy (the faithful path traps there).
fn bind_array(decl: &crate::ir::SlotDecl, actual: &ASlot) -> ASlot {
    match (decl.ty, actual) {
        (
            STy::Fp(dp),
            ASlot::FpArr {
                elem,
                dims,
                len,
                prec,
            },
        ) => ASlot::FpArr {
            elem: if *prec == dp { *elem } else { elem.store(dp) },
            dims: dims.clone(),
            len: *len,
            prec: dp,
        },
        (STy::Int, ASlot::IntArr { .. }) => actual.clone(),
        (STy::Fp(dp), _) => ASlot::FpArr {
            elem: AbsVal::top(),
            dims: Vec::new(),
            len: Interval::new(0.0, f64::INFINITY),
            prec: dp,
        },
        (_, other) => other.clone(),
    }
}

fn slot_value(st: &State, slot: &ASlot) -> AV {
    match slot {
        ASlot::Fp(v) => AV::Fp(*v),
        ASlot::Int(iv) => AV::Int(*iv),
        ASlot::Bool => AV::Bool,
        ASlot::Str => AV::Str,
        ASlot::AliasGlobal(g) => slot_value_raw(&st.globals[*g]),
        arr => slot_value_raw(arr),
    }
}

fn slot_value_raw(slot: &ASlot) -> AV {
    match slot {
        ASlot::Fp(v) => AV::Fp(*v),
        ASlot::Int(iv) => AV::Int(*iv),
        ASlot::Bool => AV::Bool,
        ASlot::Str => AV::Str,
        ASlot::FpArr { elem, .. } => AV::Fp(*elem),
        ASlot::IntArr { elem, .. } => AV::Int(*elem),
        ASlot::AliasGlobal(_) => AV::Fp(AbsVal::top()),
    }
}

fn arr_mut(st: &mut State, stor: Stor) -> &mut ASlot {
    match stor {
        Stor::L(i) => &mut st.locals[i],
        Stor::G(g) => &mut st.globals[g],
    }
}

fn havoc_slot(s: &mut ASlot) {
    match s {
        ASlot::Fp(v) => *v = AbsVal::top(),
        ASlot::Int(iv) => *iv = Interval::top(),
        ASlot::FpArr {
            elem, dims, len, ..
        } => {
            *elem = AbsVal::top();
            for d in dims.iter_mut() {
                *d = Interval::new(0.0, f64::INFINITY);
            }
            *len = Interval::new(0.0, f64::INFINITY);
        }
        ASlot::IntArr { elem, dims, len } => {
            *elem = Interval::top();
            for d in dims.iter_mut() {
                *d = Interval::new(0.0, f64::INFINITY);
            }
            *len = Interval::new(0.0, f64::INFINITY);
        }
        ASlot::Bool | ASlot::Str | ASlot::AliasGlobal(_) => {}
    }
}

fn havoc_state(st: &mut State) {
    for s in st.locals.iter_mut().chain(st.globals.iter_mut()) {
        havoc_slot(s);
    }
}

// ---------------------------------------------------------------------------
// State lattice operations
// ---------------------------------------------------------------------------

fn join_opt(a: Option<State>, b: Option<State>) -> Option<State> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(join_state(&x, &y)),
    }
}

fn join_state(a: &State, b: &State) -> State {
    State {
        locals: join_slots(&a.locals, &b.locals),
        globals: join_slots(&a.globals, &b.globals),
    }
}

fn join_slots(a: &[ASlot], b: &[ASlot]) -> Vec<ASlot> {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| join_slot(x, y))
        .collect()
}

fn join_slot(a: &ASlot, b: &ASlot) -> ASlot {
    match (a, b) {
        (ASlot::Fp(x), ASlot::Fp(y)) => ASlot::Fp(x.join(y)),
        (ASlot::Int(x), ASlot::Int(y)) => ASlot::Int(x.join(y)),
        (ASlot::Bool, ASlot::Bool) => ASlot::Bool,
        (ASlot::Str, ASlot::Str) => ASlot::Str,
        (
            ASlot::FpArr {
                elem: xe,
                dims: xd,
                len: xl,
                prec: xp,
            },
            ASlot::FpArr {
                elem: ye,
                dims: yd,
                len: yl,
                prec: yp,
            },
        ) if xp == yp && xd.len() == yd.len() => ASlot::FpArr {
            elem: xe.join(ye),
            dims: xd.iter().zip(yd.iter()).map(|(p, q)| p.join(q)).collect(),
            len: xl.join(yl),
            prec: *xp,
        },
        (
            ASlot::IntArr {
                elem: xe,
                dims: xd,
                len: xl,
            },
            ASlot::IntArr {
                elem: ye,
                dims: yd,
                len: yl,
            },
        ) if xd.len() == yd.len() => ASlot::IntArr {
            elem: xe.join(ye),
            dims: xd.iter().zip(yd.iter()).map(|(p, q)| p.join(q)).collect(),
            len: xl.join(yl),
        },
        (ASlot::AliasGlobal(x), ASlot::AliasGlobal(y)) if x == y => ASlot::AliasGlobal(*x),
        (x, _) => {
            let mut h = x.clone();
            havoc_slot(&mut h);
            h
        }
    }
}

fn state_le(a: &State, b: &State) -> bool {
    slots_le(&a.locals, &b.locals) && slots_le(&a.globals, &b.globals)
}

fn slots_le(a: &[ASlot], b: &[ASlot]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| slot_le(x, y))
}

fn slot_le(a: &ASlot, b: &ASlot) -> bool {
    match (a, b) {
        (ASlot::Fp(x), ASlot::Fp(y)) => x.subset_of(y),
        (ASlot::Int(x), ASlot::Int(y)) => x.subset_of(y),
        (ASlot::Bool, ASlot::Bool) | (ASlot::Str, ASlot::Str) => true,
        (
            ASlot::FpArr {
                elem: xe,
                dims: xd,
                len: xl,
                prec: xp,
            },
            ASlot::FpArr {
                elem: ye,
                dims: yd,
                len: yl,
                prec: yp,
            },
        ) => {
            xp == yp
                && xd.len() == yd.len()
                && xe.subset_of(ye)
                && xl.subset_of(yl)
                && xd.iter().zip(yd.iter()).all(|(p, q)| p.subset_of(q))
        }
        (
            ASlot::IntArr {
                elem: xe,
                dims: xd,
                len: xl,
            },
            ASlot::IntArr {
                elem: ye,
                dims: yd,
                len: yl,
            },
        ) => {
            xd.len() == yd.len()
                && xe.subset_of(ye)
                && xl.subset_of(yl)
                && xd.iter().zip(yd.iter()).all(|(p, q)| p.subset_of(q))
        }
        (ASlot::AliasGlobal(x), ASlot::AliasGlobal(y)) => x == y,
        _ => false,
    }
}

fn widen_state(next: &State, prev: &State) -> State {
    State {
        locals: widen_slots(&next.locals, &prev.locals),
        globals: widen_slots(&next.globals, &prev.globals),
    }
}

/// Threshold ("staircase") widening. The domain's classic widen jumps any
/// moving bound straight to ±∞, which is hopeless for round-off bounds: every
/// loop iteration grows `err` by a rounding term, so a contracting loop like
/// `x = x * 0.5` would widen to `err = ∞` even though its true error is
/// bounded by ~2u. Snapping moving bounds up a geometric ladder instead lets
/// such loops stabilize one ladder step above their true bound, while
/// genuinely diverging loops still climb to ∞ (or hit the round cap and
/// havoc — both sound).
fn mag_up(x: f64, step: f64) -> f64 {
    let mut m = 1e-30;
    while m < x {
        m *= step;
        if m > 1e300 {
            return f64::INFINITY;
        }
    }
    m
}

fn mag_down(x: f64, step: f64) -> f64 {
    if x < 1e-30 {
        return 0.0;
    }
    let mut m = 1e-30;
    while m * step <= x {
        m *= step;
        if m > 1e300 {
            return x;
        }
    }
    m
}

fn thresh_hi(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        f64::INFINITY
    } else if x > 0.0 {
        mag_up(x, 1e8)
    } else if x == 0.0 {
        0.0
    } else {
        -mag_down(-x, 1e8)
    }
}

fn thresh_lo(x: f64) -> f64 {
    -thresh_hi(-x)
}

fn widen_interval(next: &Interval, prev: &Interval) -> Interval {
    Interval {
        lo: if next.lo < prev.lo {
            thresh_lo(next.lo)
        } else {
            next.lo
        },
        hi: if next.hi > prev.hi {
            thresh_hi(next.hi)
        } else {
            next.hi
        },
    }
}

fn widen_absval(next: &AbsVal, prev: &AbsVal) -> AbsVal {
    AbsVal {
        iv: widen_interval(&next.iv, &prev.iv),
        err: if next.err > prev.err {
            mag_up(next.err, 1e4)
        } else {
            next.err
        },
        prec: prose_analysis::absint::promote(next.prec, prev.prec),
    }
}

fn widen_slots(next: &[ASlot], prev: &[ASlot]) -> Vec<ASlot> {
    next.iter()
        .zip(prev.iter())
        .map(|(n, p)| match (n, p) {
            // Integer counters widen classically: an unguarded `n = n + 1`
            // would otherwise climb the ladder one step per round and burn
            // the round cap before the FP state has a chance to stabilize.
            (ASlot::Fp(x), ASlot::Fp(y)) => ASlot::Fp(widen_absval(x, y)),
            (ASlot::Int(x), ASlot::Int(y)) => ASlot::Int(x.widen(y)),
            (
                ASlot::FpArr {
                    elem: xe,
                    dims: xd,
                    len: xl,
                    prec: xp,
                },
                ASlot::FpArr {
                    elem: ye,
                    dims: yd,
                    len: yl,
                    prec: yp,
                },
            ) if xp == yp && xd.len() == yd.len() => ASlot::FpArr {
                elem: widen_absval(xe, ye),
                dims: xd
                    .iter()
                    .zip(yd.iter())
                    .map(|(a, b)| widen_interval(a, b))
                    .collect(),
                len: widen_interval(xl, yl),
                prec: *xp,
            },
            (
                ASlot::IntArr {
                    elem: xe,
                    dims: xd,
                    len: xl,
                },
                ASlot::IntArr {
                    elem: ye,
                    dims: yd,
                    len: yl,
                },
            ) if xd.len() == yd.len() => ASlot::IntArr {
                elem: widen_interval(xe, ye),
                dims: xd
                    .iter()
                    .zip(yd.iter())
                    .map(|(a, b)| widen_interval(a, b))
                    .collect(),
                len: widen_interval(xl, yl),
            },
            (n, p) => join_slot(n, p),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Numeric conversion helpers
// ---------------------------------------------------------------------------

fn to_int(v: &AV) -> Interval {
    match v {
        AV::Int(iv) => *iv,
        AV::Fp(f) => trunc_hull(&f.primary_iv()),
        AV::Bool | AV::Str => Interval::top(),
    }
}

fn int_point(i: i64) -> Interval {
    let x = i as f64;
    if x as i64 == i || !x.is_finite() {
        Interval::point(x)
    } else {
        Interval::point(x).inflate(x.abs() * 1e-15)
    }
}

fn int_singleton(iv: &Interval) -> Option<i64> {
    let x = iv.singleton()?;
    if x.is_finite() && x == x.trunc() && x.abs() < 9.0e15 {
        Some(x as i64)
    } else {
        None
    }
}

/// Convert to an FP abstract value in the context of a partner operand:
/// integers pick up the conversion rounding of the partner's working
/// precision (the machine promotes `int op real` at the real's kind).
fn to_fp_as_operand(v: &AV, partner: &AV) -> AbsVal {
    let target = match partner {
        AV::Fp(p) => p.prec,
        _ => None,
    };
    to_fp(v, target)
}

fn to_fp(v: &AV, target: Option<FpPrecision>) -> AbsVal {
    match v {
        AV::Fp(f) => *f,
        AV::Int(iv) => int_to_fp(iv, target),
        AV::Bool | AV::Str => AbsVal::top(),
    }
}

fn int_to_fp(iv: &Interval, target: Option<FpPrecision>) -> AbsVal {
    let (u, exact_lim) = match target {
        Some(FpPrecision::Single) => (unit_roundoff(FpPrecision::Single), 16_777_216.0),
        _ => (U64, 9.007_199_254_740_992e15),
    };
    let m = iv.max_abs();
    let err = if m <= exact_lim { 0.0 } else { u * m };
    AbsVal {
        iv: *iv,
        err,
        prec: None,
    }
}

/// Hull of primary values (for integer conversions, which snap the shadow).
fn to_fp_primary(v: &AV) -> Interval {
    match v {
        AV::Fp(f) => f.primary_iv(),
        AV::Int(iv) => *iv,
        AV::Bool | AV::Str => Interval::top(),
    }
}

fn store_fp(v: AbsVal, p: FpPrecision) -> AbsVal {
    // Same-precision moves are exact; everything else re-rounds at `p`.
    if v.prec == Some(p) {
        v
    } else {
        v.store(p)
    }
}

fn convert_fp(v: &AV, target: FpPrecision) -> AbsVal {
    // `real`/`dble`/`sngl`: the primary re-rounds, the shadow keeps f64.
    store_fp(to_fp(v, Some(target)), target)
}

fn trunc_hull(iv: &Interval) -> Interval {
    Interval::new(finite_map(iv.lo, f64::trunc), finite_map(iv.hi, f64::trunc))
}

fn round_hull(iv: &Interval) -> Interval {
    Interval::new(finite_map(iv.lo, f64::round), finite_map(iv.hi, f64::round))
}

fn floor_hull(iv: &Interval) -> Interval {
    Interval::new(finite_map(iv.lo, f64::floor), finite_map(iv.hi, f64::floor))
}

fn finite_map(x: f64, f: fn(f64) -> f64) -> f64 {
    if x.is_finite() {
        f(x)
    } else {
        x
    }
}

fn int_bin(op: BinOp, a: &Interval, b: &Interval, rhs: &IExpr) -> Interval {
    match op {
        BinOp::Add => a.add(b),
        BinOp::Sub => a.sub(b),
        BinOp::Mul => a.mul(b),
        BinOp::Div => {
            let q = a.div(b);
            if q.is_finite() {
                Interval::new(q.lo.trunc() - 1.0, q.hi.trunc() + 1.0)
            } else {
                Interval::top()
            }
        }
        BinOp::Pow => match rhs {
            IExpr::IntLit(n) if (0..=64).contains(n) => {
                let mut acc = Interval::point(1.0);
                for _ in 0..*n {
                    acc = acc.mul(a);
                }
                acc
            }
            _ => Interval::top(),
        },
        _ => Interval::top(),
    }
}

fn fp_pow(base: &AbsVal, exp: &AbsVal, rhs: &IExpr) -> AbsVal {
    // The machine routes integral exponents |n| ≤ 64 through `powi`
    // (repeated multiplication), which the domain models directly.
    if let IExpr::IntLit(n) = rhs {
        if n.abs() <= 64 {
            return base.powi(*n);
        }
    }
    if let Some(x) = exp.iv.singleton() {
        if exp.err == 0.0 && x == x.trunc() && x.abs() <= 64.0 {
            return base.powi(x as i64);
        }
    }
    if base.iv.lo - base.err > 0.0 {
        // a^b = exp(b · ln a): each composite step is conservative.
        return base.ln().mul(exp).exp();
    }
    AbsVal::top()
}

/// Unary math intrinsics promote integers to f64 work (`unary_math`).
fn math_arg(v: &AV) -> AbsVal {
    match v {
        AV::Fp(f) => *f,
        AV::Int(iv) => AbsVal {
            prec: Some(FpPrecision::Double),
            ..int_to_fp(iv, Some(FpPrecision::Double))
        },
        AV::Bool | AV::Str => AbsVal::top(),
    }
}

fn reduce_fp(f: IntrinsicFn, elem: &AbsVal, len: &Interval, p: FpPrecision) -> AbsVal {
    match f {
        IntrinsicFn::Sum => {
            let n = len.hi.max(0.0);
            let m = elem.iv.max_abs();
            if !n.is_finite() || !m.is_finite() || !elem.err.is_finite() {
                return AbsVal {
                    iv: Interval::top(),
                    err: f64::INFINITY,
                    prec: Some(p),
                };
            }
            let n_iv = Interval::new(len.lo.max(0.0), n);
            let iv = elem.iv.mul(&n_iv);
            // n per-element divergences plus n roundings of partial sums
            // bounded by n·max|elem| on either side.
            let partial = n * (m + elem.err);
            let err = n * elem.err + n * unit_roundoff(p) * partial + n * U64 * (n * m);
            AbsVal {
                iv,
                err,
                prec: Some(p),
            }
        }
        // `maxval`/`minval` pick (possibly different) elements on each side:
        // the divergence stays within the per-element bound.
        _ => AbsVal {
            iv: elem.iv,
            err: elem.err,
            prec: Some(p),
        },
    }
}

/// Monotone-increasing transfer with an outward pad covering both the
/// interval-endpoint evaluation and the shadow's own libm rounding (libm
/// transcendentals are not guaranteed correctly rounded, so one ulp of
/// slack is not enough).
fn mono_iv(iv: &Interval, f: fn(f64) -> f64) -> Interval {
    let lo = f(iv.lo);
    let hi = f(iv.hi);
    Interval::new(
        nudge_down(lo - lo.abs() * 1e-15),
        nudge_up(hi + hi.abs() * 1e-15),
    )
}

fn nudge_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let b = x.to_bits();
    f64::from_bits(if x > 0.0 { b + 1 } else { b - 1 })
}

fn nudge_down(x: f64) -> f64 {
    -nudge_up(-x)
}

// ---------------------------------------------------------------------------
// Cache encoding
// ---------------------------------------------------------------------------

fn encode_state(locals: &[ASlot], globals: &[ASlot]) -> Vec<u64> {
    let mut out = Vec::with_capacity((locals.len() + globals.len()) * 4 + 1);
    for s in locals {
        encode_slot(s, &mut out);
    }
    out.push(u64::MAX); // separator
    for s in globals {
        encode_slot(s, &mut out);
    }
    out
}

fn encode_slot(s: &ASlot, out: &mut Vec<u64>) {
    match s {
        ASlot::Fp(v) => {
            out.push(0);
            encode_absval(v, out);
        }
        ASlot::Int(iv) => {
            out.push(1);
            out.push(iv.lo.to_bits());
            out.push(iv.hi.to_bits());
        }
        ASlot::Bool => out.push(2),
        ASlot::Str => out.push(3),
        ASlot::FpArr {
            elem,
            dims,
            len,
            prec,
        } => {
            out.push(4);
            encode_absval(elem, out);
            out.push(*prec as u64);
            out.push(len.lo.to_bits());
            out.push(len.hi.to_bits());
            out.push(dims.len() as u64);
            for d in dims {
                out.push(d.lo.to_bits());
                out.push(d.hi.to_bits());
            }
        }
        ASlot::IntArr { elem, dims, len } => {
            out.push(5);
            out.push(elem.lo.to_bits());
            out.push(elem.hi.to_bits());
            out.push(len.lo.to_bits());
            out.push(len.hi.to_bits());
            out.push(dims.len() as u64);
            for d in dims {
                out.push(d.lo.to_bits());
                out.push(d.hi.to_bits());
            }
        }
        ASlot::AliasGlobal(g) => {
            out.push(6);
            out.push(*g as u64);
        }
    }
}

fn encode_absval(v: &AbsVal, out: &mut Vec<u64>) {
    out.push(v.iv.lo.to_bits());
    out.push(v.iv.hi.to_bits());
    out.push(v.err.to_bits());
    out.push(match v.prec {
        None => 0,
        Some(FpPrecision::Single) => 1,
        Some(FpPrecision::Double) => 2,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    fn report(src: &str) -> BoundReport {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let map = PrecisionMap::declared(&ix);
        analyze_variant(&p, &ix, &map, 16, DEFAULT_MAX_STEPS).unwrap()
    }

    #[test]
    fn straight_line_bounds_are_tight_and_errors_scale_with_kind() {
        let r = report(
            r#"
program main
  real(kind=8) :: x
  real(kind=4) :: y
  x = 1.5d0 * 2.0d0
  y = 1.5 * 2.0
  call prose_record('x', x)
end program main
"#,
        );
        assert!(!r.incomplete);
        let x = r.var("@main::x").unwrap();
        assert!(x.lo <= 3.0 && 3.0 <= x.hi, "x hull {:?}", (x.lo, x.hi));
        assert!(x.hi - x.lo < 1e-9);
        assert!(x.abs_err < 1e-14, "f64 err {}", x.abs_err);
        let y = r.var("@main::y").unwrap();
        assert!(y.lo <= 3.0 && 3.0 <= y.hi);
        // f32 storage costs one single-precision rounding.
        assert!(y.abs_err > 0.0 && y.abs_err < 1e-5, "f32 err {}", y.abs_err);
        assert!(r.records.iter().any(|v| v.name == "x"));
    }

    #[test]
    fn counted_loop_unrolls_concretely() {
        let r = report(
            r#"
program main
  real(kind=8) :: s
  integer :: i
  s = 0.0d0
  do i = 1, 100
    s = s + 0.5d0
  end do
end program main
"#,
        );
        assert!(!r.incomplete);
        let s = r.var("@main::s").unwrap();
        assert!(s.lo <= 50.0 && 50.0 <= s.hi, "s hull {:?}", (s.lo, s.hi));
        // Concrete unroll keeps the hull over all iterations, [0, 50].
        assert!(s.hi < 50.0 + 1e-9);
        assert!(s.abs_err < 1e-11);
    }

    #[test]
    fn while_loop_reaches_a_fixpoint_without_hanging() {
        let r = report(
            r#"
program main
  real(kind=8) :: x
  integer :: n
  x = 1.0d0
  n = 0
  do while (n < 10)
    x = x * 0.5d0
    n = n + 1
  end do
  call prose_record('x', x)
end program main
"#,
        );
        assert!(!r.incomplete);
        // The variable hull includes the pre-loop seed store `x = 1`.
        let x = r.var("@main::x").unwrap();
        assert!(x.hi <= 1.0 + 1e-9, "x hi {}", x.hi);
        assert!(x.lo >= -1e-9, "x lo {}", x.lo);
        assert!(x.abs_err < 1e-9, "x err {}", x.abs_err);
        // The post-loop record is bounded by the loop invariant [0, 1] (the
        // abstract post-state keeps the trip-0 case) with a finite tight
        // error — the fixpoint must not widen err to ∞ on a contracting loop.
        let rec = r.records.iter().find(|v| v.name == "x").unwrap();
        assert!(rec.hi <= 1.0 + 1e-9, "rec hi {}", rec.hi);
        assert!(rec.lo >= -1e-9, "rec lo {}", rec.lo);
        assert!(rec.abs_err < 1e-9, "rec err {}", rec.abs_err);
    }

    #[test]
    fn interprocedural_call_and_globals_flow_through() {
        let r = report(
            r#"
module m
  real(kind=8) :: shared = 2.0d0
contains
  function dbl(q) result(f)
    real(kind=8) :: q, f
    f = q * shared
  end function dbl
end module m
program main
  use m, only: dbl
  real(kind=8) :: a
  a = dbl(3.0d0)
end program main
"#,
        );
        assert!(!r.incomplete);
        let a = r.var("@main::a").unwrap();
        assert!(a.lo <= 6.0 && 6.0 <= a.hi, "a hull {:?}", (a.lo, a.hi));
        assert!(a.hi - a.lo < 1e-9);
        let f = r.var("dbl::f").unwrap();
        assert!(f.lo <= 6.0 && 6.0 <= f.hi);
    }

    #[test]
    fn cancellation_site_is_reported() {
        let r = report(
            r#"
program main
  real(kind=8) :: a, b, c
  a = 1.0d0
  b = 1.0d0 + 1.0d-9
  c = b - a
end program main
"#,
        );
        assert!(
            r.cancellations.iter().any(|s| s.site.starts_with("@main:")),
            "sites: {:?}",
            r.cancellations
        );
    }

    #[test]
    fn f32_overflow_collapses_error_to_infinity() {
        let r = report(
            r#"
program main
  real(kind=4) :: big
  big = 1.0d38 * 100.0d0
end program main
"#,
        );
        let b = r.var("@main::big").unwrap();
        assert!(b.abs_err.is_infinite(), "err {}", b.abs_err);
    }

    #[test]
    fn precision_map_demotion_widens_the_static_error() {
        let src = r#"
program main
  real(kind=8) :: t
  integer :: i
  t = 0.0d0
  do i = 1, 300
    t = t + 1.0d-3
  end do
end program main
"#;
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let base = PrecisionMap::declared(&ix);
        let r64 = analyze_variant(&p, &ix, &base, 16, DEFAULT_MAX_STEPS).unwrap();
        let mut demoted = base.clone();
        let main_scope = (0..ix.scope_count())
            .map(prose_fortran::sema::ScopeId)
            .find(|s| ix.scope_info(*s).kind == prose_fortran::sema::ScopeKind::Main)
            .unwrap();
        demoted.set(ix.fp_var_id(main_scope, "t").unwrap(), FpPrecision::Single);
        let r32 = analyze_variant(&p, &ix, &demoted, 16, DEFAULT_MAX_STEPS).unwrap();
        let e64 = r64.var("@main::t").unwrap().abs_err;
        let e32 = r32.var("@main::t").unwrap().abs_err;
        assert!(e64 < 1e-12, "f64 err {}", e64);
        assert!(e32 > 1e-6 && e32 < 1e-2, "f32 err {}", e32);
        assert!(e32 > e64 * 1e4);
    }

    #[test]
    fn array_kernel_with_dummy_binding_is_bounded() {
        let r = report(
            r#"
module m
contains
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = u(i) * 2.0d0
    end do
  end subroutine kernel
end module m
program main
  use m, only: kernel
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 0.25d0 * k
  end do
  call kernel(a, b, 8)
  call prose_record('b1', b(1))
end program main
"#,
        );
        assert!(!r.incomplete);
        let t = r.var("kernel::t").unwrap();
        assert!(
            t.lo >= -1e-9 && t.hi <= 4.0 + 1e-9,
            "t hull {:?}",
            (t.lo, t.hi)
        );
        let rec = r.records.iter().find(|v| v.name == "b1").unwrap();
        assert!(rec.lo >= -1e-9 && rec.hi <= 4.0 + 1e-9);
    }

    #[test]
    fn budget_exhaustion_marks_report_incomplete() {
        let p = parse_program(
            r#"
program main
  real(kind=8) :: s
  integer :: i
  s = 0.0d0
  do i = 1, 10000
    s = s + 1.0d0
  end do
end program main
"#,
        )
        .unwrap();
        let ix = analyze(&p).unwrap();
        let map = PrecisionMap::declared(&ix);
        let r = analyze_variant(&p, &ix, &map, 16, 50).unwrap();
        assert!(r.incomplete);
    }
}
