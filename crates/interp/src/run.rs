//! Top-level entry: lower, execute, and package results.

use crate::cost::CostParams;
use crate::ir::ProgramIR;
use crate::lower::lower_program;
use crate::machine::Machine;
use crate::shadow::ShadowReport;
use crate::timers::Timers;
use prose_fortran::sema::ProgramIndex;
use prose_fortran::Program;
use std::collections::HashSet;

pub use crate::machine::{OpCounts, RunError, RunRecords};

/// Configuration for one dynamic evaluation.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub cost: CostParams,
    /// Simulated-cycle budget; exceeding it aborts with
    /// [`RunError::Timeout`] (searches use 3× the baseline, Section IV-A).
    pub budget: Option<f64>,
    /// Hard event-count safety valve.
    pub max_events: u64,
    /// Wall-clock deadline for the execution phase. Checked cooperatively
    /// every [`crate::machine::DEADLINE_CHECK_INTERVAL`] events; exceeding
    /// it aborts with [`RunError::Deadline`]. Unlike `budget` (modeled
    /// cycles) this is real elapsed time — the only mechanism that can kill
    /// a stalled event loop (e.g. an injected `hang` fault). `None`
    /// disables the check; modeled cycles, numerics, and records are
    /// bit-identical either way as long as the deadline does not fire.
    pub deadline: Option<std::time::Duration>,
    /// Names of synthesized wrapper procedures (excluded from inlining and
    /// from hotspot timer scopes).
    pub wrapper_names: HashSet<String>,
    /// Fault to inject into this run ([`prose_faults`]); `None` in normal
    /// operation. The fault fires after its event threshold, or at run
    /// termination if the run is shorter, so a planned fault always
    /// manifests.
    pub fault: Option<prose_faults::InjectedFault>,
    /// Run an fp64 shadow value alongside every FP slot and array element
    /// ([`crate::shadow`]). Bit-identical primary results; use
    /// [`run_ir_shadow`]/[`run_program_shadow`] to retrieve the report.
    pub shadow: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cost: CostParams::default(),
            budget: None,
            max_events: 400_000_000,
            deadline: None,
            wrapper_names: HashSet::new(),
            fault: None,
            shadow: false,
        }
    }
}

/// The result of one successful run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-procedure exclusive cycles and call counts.
    pub timers: Timers,
    /// Recorded metric samples and captured prints.
    pub records: RunRecords,
    /// Whole-program simulated cycles.
    pub total_cycles: f64,
    /// Interpreter events executed (statements + iterations).
    pub events: u64,
    /// Operation counters (observability; not part of the cost model).
    pub ops: OpCounts,
    /// Wall-clock nanoseconds spent lowering AST → IR.
    pub lower_ns: u64,
    /// Wall-clock nanoseconds spent interpreting.
    pub exec_ns: u64,
}

/// Lower and execute `program`, returning timing + records, or the runtime
/// error that aborted it.
pub fn run_program(
    program: &Program,
    index: &ProgramIndex,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    run_program_shadow(program, index, cfg).0
}

/// [`run_program`], also returning the shadow report when
/// [`RunConfig::shadow`] is set. The report is produced even when the run
/// aborts with an error — that is where NaN/Inf provenance lives.
pub fn run_program_shadow(
    program: &Program,
    index: &ProgramIndex,
    cfg: &RunConfig,
) -> (Result<RunOutcome, RunError>, Option<ShadowReport>) {
    let t0 = std::time::Instant::now();
    let ir = match lower_program(
        program,
        index,
        &cfg.wrapper_names,
        cfg.cost.inline_max_stmts,
    ) {
        Ok(ir) => ir,
        Err(e) => return (Err(RunError::Lower(e.to_string())), None),
    };
    let lower_ns = t0.elapsed().as_nanos() as u64;
    let (res, report) = run_ir_shadow(&ir, cfg);
    (
        res.map(|mut outcome| {
            outcome.lower_ns = lower_ns;
            outcome
        }),
        report,
    )
}

/// Execute pre-lowered IR — the variant fast path ([`crate::template`]).
///
/// `wrapper_names` in `cfg` is ignored: wrapper status is already baked
/// into the IR. `lower_ns` in the outcome is zero; template instantiation
/// time is accounted by the caller's stage clock.
pub fn run_ir(ir: &ProgramIR, cfg: &RunConfig) -> Result<RunOutcome, RunError> {
    run_ir_shadow(ir, cfg).0
}

/// [`run_ir`], also returning the shadow report when [`RunConfig::shadow`]
/// is set. The report survives aborted runs so NaN/Inf provenance is
/// available for failure classification.
pub fn run_ir_shadow(
    ir: &ProgramIR,
    cfg: &RunConfig,
) -> (Result<RunOutcome, RunError>, Option<ShadowReport>) {
    let budget = cfg.budget.unwrap_or(f64::INFINITY);
    let t1 = std::time::Instant::now();
    let mut m = Machine::new(ir, cfg.cost.clone(), budget, cfg.max_events);
    m.fault = cfg.fault.clone();
    if let Some(d) = cfg.deadline {
        m.deadline_at = Some(t1 + d);
        m.deadline_ms = d.as_millis() as u64;
    }
    if cfg.shadow {
        m.enable_shadow();
    }
    if let Err(e) = m.run() {
        let report = m.shadow_report();
        return (Err(e), report);
    }
    let report = m.shadow_report();
    let (timers, records, total_cycles, events, ops) = m.finish();
    let exec_ns = t1.elapsed().as_nanos() as u64;
    (
        Ok(RunOutcome {
            timers,
            records,
            total_cycles,
            events,
            ops,
            lower_ns: 0,
            exec_ns,
        }),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    fn run(src: &str) -> RunOutcome {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        run_program(&p, &ix, &RunConfig::default()).unwrap()
    }

    fn run_err(src: &str) -> RunError {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        run_program(&p, &ix, &RunConfig::default()).unwrap_err()
    }

    fn run_cfg(src: &str, cfg: &RunConfig) -> Result<RunOutcome, RunError> {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        run_program(&p, &ix, cfg)
    }

    #[test]
    fn computes_and_records_a_scalar() {
        let out = run(
            "program t\n real(kind=8) :: x\n x = 3.0d0\n x = x * x + 1.0d0\n call prose_record('x', x)\nend program t\n",
        );
        assert_eq!(out.records.scalars["x"], vec![10.0]);
        assert!(out.total_cycles > 0.0);
    }

    #[test]
    fn op_counts_reflect_program_structure() {
        let out = run(
            "program t\n real(kind=8) :: s\n integer :: i\n s = 0.0d0\n do i = 1, 10\n s = s + 1.5d0\n end do\n call prose_record('s', s)\nend program t\n",
        );
        assert_eq!(out.ops.loop_iters, 10);
        assert!(
            out.ops.fp64_ops >= 10,
            "fp64 adds in the loop: {:?}",
            out.ops
        );
        assert_eq!(out.ops.fp32_ops, 0);
        assert_eq!(out.ops.allreduces, 0);
        assert!(out.ops.total() > 0);
        // Stage clocks are plumbed through; at least one of the two
        // stages must have registered time for a real parse+run.
        assert!(out.lower_ns > 0 || out.exec_ns > 0);
    }

    #[test]
    fn single_precision_arithmetic_really_rounds() {
        let src = |kind: u8| {
            format!(
                "program t\n real(kind={kind}) :: x, acc\n integer :: i\n acc = 0.0\n x = 0.1\n do i = 1, 1000\n acc = acc + x\n end do\n call prose_record('acc', acc)\nend program t\n"
            )
        };
        let out64 = run(&src(8));
        let out32 = run(&src(4));
        let a64 = out64.records.scalars["acc"][0];
        let a32 = out32.records.scalars["acc"][0];
        // Both near 100 but the f32 accumulation error is much larger.
        assert!((a64 - 100.0).abs() < 1e-9);
        assert!((a32 - 100.0).abs() > 1e-6);
        assert!((a32 - 100.0).abs() < 0.1);
    }

    #[test]
    fn loops_with_do_step_and_while() {
        let out = run(
            "program t\n integer :: i, n\n real(kind=8) :: s\n s = 0.0d0\n n = 0\n do i = 10, 2, -2\n s = s + 1.0d0\n end do\n do while (n < 5)\n n = n + 1\n end do\n call prose_record('s', s)\n call prose_record('n', 1.0d0 * n)\nend program t\n",
        );
        assert_eq!(out.records.scalars["s"], vec![5.0]);
        assert_eq!(out.records.scalars["n"], vec![5.0]);
    }

    #[test]
    fn procedures_functions_and_scalar_writeback() {
        let out = run(r#"
module m
contains
  function square(x) result(y)
    real(kind=8) :: x, y
    y = x * x
  end function square
  subroutine bump(v)
    real(kind=8), intent(inout) :: v
    v = v + 1.0d0
  end subroutine bump
end module m
program t
  use m
  real(kind=8) :: a
  a = square(3.0d0)
  call bump(a)
  call prose_record('a', a)
end program t
"#);
        assert_eq!(out.records.scalars["a"], vec![10.0]);
    }

    #[test]
    fn arrays_are_passed_by_reference() {
        let out = run(r#"
module m
contains
  subroutine fill(v, n)
    real(kind=8), intent(out) :: v(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      v(i) = 1.0d0 * i
    end do
  end subroutine fill
end module m
program t
  use m
  real(kind=8) :: a(4)
  call fill(a, 4)
  call prose_record('a3', a(3))
  call prose_record_array('a', a)
end program t
"#);
        assert_eq!(out.records.scalars["a3"], vec![3.0]);
        assert_eq!(out.records.arrays["a"], vec![vec![1.0, 2.0, 3.0, 4.0]]);
    }

    #[test]
    fn allocatable_lifecycle() {
        let out = run(
            "program t\n real(kind=8), allocatable :: a(:)\n allocate(a(3))\n a = 2.0d0\n call prose_record('s', sum(a))\n deallocate(a)\nend program t\n",
        );
        assert_eq!(out.records.scalars["s"], vec![6.0]);
    }

    #[test]
    fn use_after_deallocate_is_an_error() {
        let e = run_err(
            "program t\n real(kind=8), allocatable :: a(:)\n allocate(a(3))\n deallocate(a)\n a(1) = 1.0d0\nend program t\n",
        );
        assert!(matches!(e, RunError::Unallocated { .. }));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let e = run_err(
            "program t\n real(kind=8) :: a(3)\n integer :: i\n i = 4\n a(i) = 1.0d0\nend program t\n",
        );
        assert!(matches!(e, RunError::OutOfBounds { .. }));
    }

    #[test]
    fn overflow_to_infinity_is_a_runtime_error() {
        // f32 overflows where f64 does not: the MOM6-style failure mode.
        let e = run_err(
            "program t\n real(kind=4) :: x\n integer :: i\n x = 10.0\n do i = 1, 100\n x = x * x\n end do\nend program t\n",
        );
        assert!(matches!(e, RunError::NonFinite { .. }));
        // Same program in f64 still overflows eventually; with fewer steps
        // it survives in f64 but dies in f32.
        // 10^(2^6) = 1e64 overflows f32 (max ~3.4e38) but not f64.
        let ok64 = run(
            "program t\n real(kind=8) :: x\n integer :: i\n x = 10.0\n do i = 1, 6\n x = x * x\n end do\n call prose_record('x', x)\nend program t\n",
        );
        assert!(ok64.records.scalars["x"][0].is_finite());
        let e32 = run_err(
            "program t\n real(kind=4) :: x\n integer :: i\n x = 10.0\n do i = 1, 6\n x = x * x\n end do\nend program t\n",
        );
        assert!(matches!(e32, RunError::NonFinite { .. }));
    }

    #[test]
    fn stop_nonzero_is_error_stop_zero_is_clean() {
        let e = run_err("program t\n stop 7\nend program t\n");
        assert_eq!(e, RunError::Stop { code: 7 });
        let out = run("program t\n real(kind=8) :: x\n x = 1.0d0\n call prose_record('x', x)\n stop\nend program t\n");
        assert_eq!(out.records.scalars["x"], vec![1.0]);
    }

    #[test]
    fn stop_guard_inside_procedure_unwinds() {
        let e = run_err(
            r#"
module m
contains
  subroutine guard(h)
    real(kind=8) :: h
    if (h < 0.0d0) then
      stop 2
    end if
  end subroutine guard
end module m
program t
  use m
  call guard(-1.0d0)
end program t
"#,
        );
        assert_eq!(e, RunError::Stop { code: 2 });
    }

    #[test]
    fn budget_timeout_fires() {
        let cfg = RunConfig {
            budget: Some(100.0),
            ..Default::default()
        };
        let e = run_cfg(
            "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 100000\n s = s + 1.0d0\n end do\nend program t\n",
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(e, RunError::Timeout { .. }));
    }

    #[test]
    fn event_limit_catches_infinite_loops() {
        let cfg = RunConfig {
            max_events: 10_000,
            ..Default::default()
        };
        let e = run_cfg(
            "program t\n real(kind=8) :: x\n x = 1.0d0\n do while (x > 0.0d0)\n x = x + 1.0d0\n x = x - 1.0d0\n end do\nend program t\n",
            &cfg,
        )
        .unwrap_err();
        assert_eq!(e, RunError::EventLimit);
    }

    #[test]
    fn deadline_kills_long_runs_but_not_short_ones() {
        let src = "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 100000\n s = s + 1.0d0\n end do\n call prose_record('s', s)\nend program t\n";
        // A generous deadline never fires, and the run is unaffected.
        let cfg = RunConfig {
            deadline: Some(std::time::Duration::from_secs(600)),
            ..Default::default()
        };
        let out = run_cfg(src, &cfg).unwrap();
        assert_eq!(out.records.scalars["s"], vec![100000.0]);
        // A zero deadline kills any run long enough to hit a check point.
        let cfg = RunConfig {
            deadline: Some(std::time::Duration::from_millis(0)),
            ..Default::default()
        };
        let e = run_cfg(src, &cfg).unwrap_err();
        assert_eq!(e, RunError::Deadline { ms: 0 });
    }

    #[test]
    fn deadline_does_not_perturb_modeled_state() {
        let src = "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 5000\n s = s + 0.1d0\n end do\n call prose_record('s', s)\nend program t\n";
        let off = run_cfg(src, &RunConfig::default()).unwrap();
        let cfg = RunConfig {
            deadline: Some(std::time::Duration::from_secs(600)),
            ..Default::default()
        };
        let on = run_cfg(src, &cfg).unwrap();
        assert_eq!(off.records, on.records);
        assert_eq!(off.total_cycles.to_bits(), on.total_cycles.to_bits());
        assert_eq!(off.events, on.events);
        assert_eq!(off.ops, on.ops);
    }

    #[test]
    fn hang_fault_is_killed_only_by_the_deadline() {
        use prose_faults::InjectedFault;
        let src = "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 1000\n s = s + 1.0d0\n end do\nend program t\n";
        // Once the stall begins, neither the modeled budget nor the event
        // limit is ever consulted again — only the wall-clock deadline
        // terminates it.
        let cfg = RunConfig {
            fault: Some(InjectedFault::Hang { after_events: 10 }),
            deadline: Some(std::time::Duration::from_millis(50)),
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let e = run_cfg(src, &cfg).unwrap_err();
        assert_eq!(e, RunError::Deadline { ms: 50 });
        assert!(t0.elapsed() >= std::time::Duration::from_millis(50));
    }

    #[test]
    fn injected_faults_fire_deterministically() {
        use prose_faults::InjectedFault;
        let src = "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 1000\n s = s + 1.0d0\n end do\n call prose_record('s', s)\nend program t\n";
        // Spurious timeout, despite an infinite budget.
        let cfg = RunConfig {
            fault: Some(InjectedFault::Timeout { after_events: 50 }),
            ..Default::default()
        };
        assert!(matches!(
            run_cfg(src, &cfg).unwrap_err(),
            RunError::Timeout { .. }
        ));
        // NaN/Inf result on a program that computes nothing non-finite.
        let cfg = RunConfig {
            fault: Some(InjectedFault::NonFinite { after_events: 50 }),
            ..Default::default()
        };
        assert!(matches!(
            run_cfg(src, &cfg).unwrap_err(),
            RunError::NonFinite { .. }
        ));
        // A fault with a threshold beyond the run length fires at
        // termination rather than silently evaporating.
        let cfg = RunConfig {
            fault: Some(InjectedFault::NonFinite {
                after_events: u64::MAX,
            }),
            ..Default::default()
        };
        assert!(matches!(
            run_cfg(src, &cfg).unwrap_err(),
            RunError::NonFinite { .. }
        ));
    }

    #[test]
    fn injected_abort_panics_with_typed_payload() {
        use prose_faults::{InjectedAbort, InjectedFault};
        let src = "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 1000\n s = s + 1.0d0\n end do\nend program t\n";
        let cfg = RunConfig {
            fault: Some(InjectedFault::Abort { after_events: 25 }),
            ..Default::default()
        };
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let payload =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_program(&p, &ix, &cfg)))
                .unwrap_err();
        let abort = payload
            .downcast_ref::<InjectedAbort>()
            .expect("abort panic carries an InjectedAbort payload");
        assert_eq!(abort.after_events, 25);
    }

    #[test]
    fn uniform_f32_vector_loop_is_about_twice_as_fast() {
        let src = |kind: u8| {
            format!(
                r#"
module m
contains
  subroutine axpy(a, x, y, n)
    real(kind={kind}), intent(in) :: a, x(n)
    real(kind={kind}), intent(inout) :: y(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      y(i) = y(i) + a * x(i)
    end do
  end subroutine axpy
end module m
program t
  use m
  real(kind={kind}) :: x(1000), y(1000), a
  integer :: i
  do i = 1, 1000
    x(i) = 1.0
    y(i) = 2.0
  end do
  a = 0.5
  call axpy(a, x, y, 1000)
end program t
"#
            )
        };
        let p64 = parse_program(&src(8)).unwrap();
        let ix64 = analyze(&p64).unwrap();
        let o64 = run_program(&p64, &ix64, &RunConfig::default()).unwrap();
        let p32 = parse_program(&src(4)).unwrap();
        let ix32 = analyze(&p32).unwrap();
        let o32 = run_program(&p32, &ix32, &RunConfig::default()).unwrap();
        let t64 = o64.timers.get("axpy").unwrap().cycles;
        let t32 = o32.timers.get("axpy").unwrap().cycles;
        let speedup = t64 / t32;
        assert!(
            speedup > 1.6 && speedup < 2.2,
            "expected ~2x f32 speedup in vector loop, got {speedup}"
        );
    }

    #[test]
    fn recurrence_loop_gets_no_f32_speedup() {
        let src = |kind: u8| {
            format!(
                r#"
module m
contains
  subroutine scan(x, n)
    real(kind={kind}), intent(inout) :: x(n)
    integer, intent(in) :: n
    integer :: i
    do i = 2, n
      x(i) = x(i) + x(i-1) * 0.5
    end do
  end subroutine scan
end module m
program t
  use m
  real(kind={kind}) :: x(1000)
  integer :: i
  do i = 1, 1000
    x(i) = 0.001
  end do
  call scan(x, 1000)
end program t
"#
            )
        };
        let p64 = parse_program(&src(8)).unwrap();
        let o64 = run_program(&p64, &analyze(&p64).unwrap(), &RunConfig::default()).unwrap();
        let p32 = parse_program(&src(4)).unwrap();
        let o32 = run_program(&p32, &analyze(&p32).unwrap(), &RunConfig::default()).unwrap();
        let t64 = o64.timers.get("scan").unwrap().cycles;
        let t32 = o32.timers.get("scan").unwrap().cycles;
        let speedup = t64 / t32;
        // Scalar loop: only memory traffic shrinks; compute dominates.
        assert!(
            speedup < 1.35,
            "recurrence must not enjoy vector speedup, got {speedup}"
        );
    }

    #[test]
    fn mixed_precision_in_loop_is_slower_than_either_uniform() {
        let src = |k_acc: u8, k_arr: u8| {
            format!(
                r#"
module m
contains
  subroutine work(x, t, n)
    real(kind={k_arr}), intent(in) :: x(n)
    real(kind={k_arr}), intent(out) :: t(n)
    integer, intent(in) :: n
    real(kind={k_acc}) :: c
    integer :: i
    c = 1.5
    do i = 1, n
      t(i) = x(i) * c + x(i)
    end do
  end subroutine work
end module m
program t
  use m
  real(kind={k_arr}) :: x(2000), t(2000)
  integer :: i
  do i = 1, 2000
    x(i) = 0.5
  end do
  call work(x, t, 2000)
end program t
"#
            )
        };
        let time = |a: u8, b: u8| {
            let p = parse_program(&src(a, b)).unwrap();
            let o = run_program(&p, &analyze(&p).unwrap(), &RunConfig::default()).unwrap();
            o.timers.get("work").unwrap().cycles
        };
        let uniform64 = time(8, 8);
        let uniform32 = time(4, 4);
        let mixed = time(8, 4); // f64 scalar inside f32 loop → casts, no SIMD
        assert!(
            mixed > uniform64,
            "mixed {mixed} should exceed uniform64 {uniform64}"
        );
        assert!(
            mixed > uniform32,
            "mixed {mixed} should exceed uniform32 {uniform32}"
        );
    }

    #[test]
    fn intrinsics_compute_correctly() {
        let out = run(r#"
program t
  real(kind=8) :: x
  x = sqrt(16.0d0) + abs(-2.0d0) + max(1.0d0, 3.0d0) + min(5.0d0, 4.0d0)
  x = x + sign(2.0d0, -1.0d0) + mod(7.0d0, 4.0d0)
  call prose_record('x', x)
  call prose_record('e', exp(0.0d0))
  call prose_record('ep32', dble(epsilon(sngl(x))))
  call prose_record('fl', 1.0d0 * floor(2.7d0) + nint(2.6d0))
end program t
"#);
        assert_eq!(
            out.records.scalars["x"],
            vec![4.0 + 2.0 + 3.0 + 4.0 - 2.0 + 3.0]
        );
        assert_eq!(out.records.scalars["e"], vec![1.0]);
        assert_eq!(out.records.scalars["ep32"], vec![f32::EPSILON as f64]);
        assert_eq!(out.records.scalars["fl"], vec![5.0]);
    }

    #[test]
    fn mpi_allreduce_is_identity_with_fixed_latency() {
        let out = run(
            "program t\n real(kind=8) :: local, global\n local = 5.0d0\n global = 0.0d0\n call mpi_allreduce_sum(local * 2.0d0, global)\n call prose_record('g', global)\nend program t\n",
        );
        assert_eq!(out.records.scalars["g"], vec![10.0]);
        // Latency appears on the clock.
        assert!(out.total_cycles >= CostParams::default().allreduce);
    }

    #[test]
    fn module_variables_are_shared_state() {
        let out = run(r#"
module state
  real(kind=8) :: counter = 0.0d0
contains
  subroutine tick()
    counter = counter + 1.0d0
  end subroutine tick
end module state
program t
  use state
  call tick()
  call tick()
  call prose_record('c', counter)
end program t
"#);
        assert_eq!(out.records.scalars["c"], vec![2.0]);
    }

    #[test]
    fn print_is_captured() {
        let out = run("program t\n print *, 'hello', 42\nend program t\n");
        assert_eq!(out.records.stdout, vec!["hello 42"]);
    }

    #[test]
    fn exit_and_cycle_control_loops() {
        let out = run(r#"
program t
  integer :: i
  real(kind=8) :: s
  s = 0.0d0
  do i = 1, 10
    if (i == 3) then
      cycle
    end if
    if (i == 6) then
      exit
    end if
    s = s + 1.0d0
  end do
  call prose_record('s', s)
end program t
"#);
        assert_eq!(out.records.scalars["s"], vec![4.0]); // i = 1,2,4,5
    }

    #[test]
    fn untransformed_mixed_argument_association_is_rejected() {
        // Passing an f64 array to an f32 dummy without a wrapper must fail,
        // exactly as Fortran would fail to compile it.
        let e = run_err(
            r#"
module m
contains
  subroutine s(u, n)
    real(kind=4), intent(inout) :: u(n)
    integer, intent(in) :: n
    u(1) = 0.0
  end subroutine s
end module m
program t
  use m
  real(kind=8) :: a(3)
  a = 1.0d0
  call s(a, 3)
end program t
"#,
        );
        assert!(matches!(e, RunError::Invalid { .. }), "{e}");
    }

    #[test]
    fn function_result_kind_conversion_at_assignment() {
        let out = run(r#"
module m
contains
  function third() result(r)
    real(kind=4) :: r
    r = 1.0 / 3.0
  end function third
end module m
program t
  use m
  real(kind=8) :: x
  x = third()
  call prose_record('x', x)
end program t
"#);
        let x = out.records.scalars["x"][0];
        assert_eq!(x, (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn wrapper_call_costs_more_than_direct_call() {
        // A loop calling a non-inlinable wrapper pays call overhead per
        // iteration and loses vectorization.
        let direct = r#"
module m
contains
  function f(q) result(r)
    real(kind=8) :: q, r
    r = q * 0.5d0
  end function f
  subroutine k(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      u(i) = f(u(i))
    end do
  end subroutine k
end module m
program t
  use m
  real(kind=8) :: u(500)
  u = 1.0d0
  call k(u, 500)
end program t
"#;
        let p = parse_program(direct).unwrap();
        let ix = analyze(&p).unwrap();
        let o_inline = run_program(&p, &ix, &RunConfig::default()).unwrap();
        // Same program, but pretend f is a wrapper (not inlinable).
        let mut cfg = RunConfig::default();
        cfg.wrapper_names.insert("f".to_string());
        let o_wrapped = run_program(&p, &ix, &cfg).unwrap();
        assert!(
            o_wrapped.total_cycles > o_inline.total_cycles * 2.0,
            "wrapper: {} vs inlined: {}",
            o_wrapped.total_cycles,
            o_inline.total_cycles
        );
    }
}
