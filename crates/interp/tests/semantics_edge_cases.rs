//! Edge-case semantics tests for the interpreter: the Fortran behaviours
//! the model sources rely on implicitly.

use prose_fortran::{analyze, parse_program};
use prose_interp::{run_program, RunConfig, RunError, RunOutcome};

fn run(src: &str) -> RunOutcome {
    let p = parse_program(src).unwrap();
    let ix = analyze(&p).unwrap();
    run_program(&p, &ix, &RunConfig::default()).unwrap()
}

fn run_err(src: &str) -> RunError {
    let p = parse_program(src).unwrap();
    let ix = analyze(&p).unwrap();
    run_program(&p, &ix, &RunConfig::default()).unwrap_err()
}

#[test]
fn reallocate_after_deallocate_resizes() {
    let out = run(r#"
program t
  real(kind=8), allocatable :: a(:)
  allocate(a(3))
  a = 1.0d0
  call prose_record('s1', sum(a))
  deallocate(a)
  allocate(a(5))
  a = 2.0d0
  call prose_record('s2', sum(a))
end program t
"#);
    assert_eq!(out.records.scalars["s1"], vec![3.0]);
    assert_eq!(out.records.scalars["s2"], vec![10.0]);
}

#[test]
fn negative_step_loops_with_exit_and_cycle() {
    let out = run(r#"
program t
  integer :: i
  real(kind=8) :: s
  s = 0.0d0
  do i = 9, 1, -2
    if (i == 7) then
      cycle
    end if
    if (i == 1) then
      exit
    end if
    s = s + 1.0d0 * i
  end do
  call prose_record('s', s)
end program t
"#);
    // i = 9 (+9), 7 (cycle), 5 (+5), 3 (+3), 1 (exit) => 17.
    assert_eq!(out.records.scalars["s"], vec![17.0]);
}

#[test]
fn zero_trip_loops_execute_nothing() {
    let out = run(
        "program t\n integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 5, 1\n s = s + 1.0d0\n end do\n call prose_record('s', s)\nend program t\n",
    );
    assert_eq!(out.records.scalars["s"], vec![0.0]);
}

#[test]
fn integer_arrays_work_as_index_maps() {
    let out = run(r#"
program t
  integer :: idx(4), i
  real(kind=8) :: v(4), s
  do i = 1, 4
    idx(i) = 5 - i
    v(i) = 10.0d0 * i
  end do
  s = 0.0d0
  do i = 1, 4
    s = s + v(idx(i)) / i
  end do
  call prose_record('s', s)
end program t
"#);
    // v(4)/1 + v(3)/2 + v(2)/3 + v(1)/4 = 40 + 15 + 6.667 + 2.5
    let s = out.records.scalars["s"][0];
    assert!((s - (40.0 + 15.0 + 20.0 / 3.0 + 2.5)).abs() < 1e-12);
}

#[test]
fn function_calls_inside_conditions_and_bounds() {
    let out = run(r#"
module m
contains
  function double_it(x) result(y)
    real(kind=8) :: x, y
    y = 2.0d0 * x
  end function double_it
  function limit(n) result(m2)
    integer :: n, m2
    m2 = n - 1
  end function limit
end module m
program t
  use m
  integer :: i
  real(kind=8) :: s
  s = 1.0d0
  do i = 1, limit(4)
    if (double_it(s) < 100.0d0) then
      s = double_it(s)
    end if
  end do
  call prose_record('s', s)
end program t
"#);
    assert_eq!(out.records.scalars["s"], vec![8.0]);
}

#[test]
fn recursion_guard_trips_instead_of_overflowing() {
    let e = run_err(
        r#"
module m
contains
  function f(x) result(r)
    real(kind=8) :: x, r
    r = f(x + 1.0d0)
  end function f
end module m
program t
  use m
  real(kind=8) :: y
  y = f(0.0d0)
end program t
"#,
    );
    assert_eq!(e, RunError::StackOverflow);
}

#[test]
fn whole_array_copy_between_same_kind_arrays() {
    let out = run(r#"
program t
  real(kind=8) :: a(4), b(4)
  integer :: i
  do i = 1, 4
    a(i) = 1.5d0 * i
  end do
  b = a
  a = 0.0d0
  call prose_record('b', sum(b))
  call prose_record('a', sum(a))
end program t
"#);
    assert_eq!(out.records.scalars["b"], vec![15.0]);
    assert_eq!(out.records.scalars["a"], vec![0.0]);
}

#[test]
fn array_copy_shape_mismatch_is_an_error() {
    let e = run_err(
        "program t\n real(kind=8), allocatable :: a(:), b(:)\n allocate(a(3), b(4))\n a = 1.0d0\n b = a\nend program t\n",
    );
    assert!(matches!(e, RunError::Invalid { .. }), "{e}");
}

#[test]
fn intent_out_scalars_write_back_through_two_levels() {
    let out = run(r#"
module m
contains
  subroutine inner(v)
    real(kind=8), intent(out) :: v
    v = 7.0d0
  end subroutine inner
  subroutine outer(w)
    real(kind=8), intent(out) :: w
    call inner(w)
    w = w + 1.0d0
  end subroutine outer
end module m
program t
  use m
  real(kind=8) :: x
  x = 0.0d0
  call outer(x)
  call prose_record('x', x)
end program t
"#);
    assert_eq!(out.records.scalars["x"], vec![8.0]);
}

#[test]
fn array_element_as_scalar_argument_writes_back() {
    let out = run(r#"
module m
contains
  subroutine bump(v)
    real(kind=8), intent(inout) :: v
    v = v + 1.0d0
  end subroutine bump
end module m
program t
  use m
  real(kind=8) :: a(3)
  a = 5.0d0
  call bump(a(2))
  call prose_record('a2', a(2))
  call prose_record('a1', a(1))
end program t
"#);
    assert_eq!(out.records.scalars["a2"], vec![6.0]);
    assert_eq!(out.records.scalars["a1"], vec![5.0]);
}

#[test]
fn module_array_state_persists_across_calls() {
    let out = run(r#"
module state
  real(kind=8) :: hist(3)
  integer :: n = 0
contains
  subroutine push(v)
    real(kind=8), intent(in) :: v
    n = n + 1
    hist(n) = v
  end subroutine push
end module state
program t
  use state
  call push(1.0d0)
  call push(2.5d0)
  call push(4.0d0)
  call prose_record('sum', sum(hist))
  call prose_record('n', 1.0d0 * n)
end program t
"#);
    assert_eq!(out.records.scalars["sum"], vec![7.5]);
    assert_eq!(out.records.scalars["n"], vec![3.0]);
}

#[test]
fn mixed_kind_comparison_promotes_correctly() {
    // 0.1 is not exactly representable: the f32 and f64 roundings differ,
    // and Fortran compares them after promotion — a classic trap that the
    // interpreter must reproduce faithfully.
    let out = run(r#"
program t
  real(kind=4) :: a
  real(kind=8) :: b
  real(kind=8) :: flag
  a = 0.1
  b = 0.1d0
  flag = 0.0d0
  if (a == b) then
    flag = 1.0d0
  end if
  call prose_record('eq', flag)
end program t
"#);
    assert_eq!(
        out.records.scalars["eq"],
        vec![0.0],
        "f32(0.1) must differ from f64(0.1)"
    );
}

#[test]
fn negative_zero_and_sign_intrinsic() {
    let out = run(r#"
program t
  real(kind=8) :: a, b
  a = sign(3.0d0, -0.0d0)
  b = sign(3.0d0, 0.0d0)
  call prose_record('a', a)
  call prose_record('b', b)
end program t
"#);
    assert_eq!(out.records.scalars["a"], vec![-3.0]);
    assert_eq!(out.records.scalars["b"], vec![3.0]);
}

#[test]
fn integer_division_truncates_toward_zero() {
    let out = run(
        "program t\n integer :: a, b\n real(kind=8) :: x, y\n a = 7 / 2\n b = (0 - 7) / 2\n x = 1.0d0 * a\n y = 1.0d0 * b\n call prose_record('x', x)\n call prose_record('y', y)\nend program t\n",
    );
    assert_eq!(out.records.scalars["x"], vec![3.0]);
    assert_eq!(out.records.scalars["y"], vec![-3.0]);
}

#[test]
fn integer_div_by_zero_is_an_error() {
    let e = run_err("program t\n integer :: a, b\n b = 0\n a = 7 / b\nend program t\n");
    assert!(matches!(e, RunError::DivByZero { .. }));
}

#[test]
fn print_and_stop_interact_with_records() {
    let out = run(r#"
program t
  real(kind=8) :: x
  x = 2.0d0
  print *, 'x is', x
  call prose_record('x', x)
  stop
  call prose_record('never', x)
end program t
"#);
    assert_eq!(out.records.stdout.len(), 1);
    assert!(out.records.scalars.contains_key("x"));
    assert!(!out.records.scalars.contains_key("never"));
}
