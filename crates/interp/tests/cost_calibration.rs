//! Calibration tests: the cost-model facts the paper's phenomena rest on.
//! Each test pins one mechanism with a measured ratio, so a cost-model
//! change that would silently break a figure fails here first.

use prose_fortran::{analyze, parse_program};
use prose_interp::{run_program, RunConfig, RunOutcome};

fn run(src: &str) -> RunOutcome {
    let p = parse_program(src).unwrap();
    let ix = analyze(&p).unwrap();
    run_program(&p, &ix, &RunConfig::default()).unwrap()
}

fn proc_cycles(out: &RunOutcome, p: &str) -> f64 {
    out.timers.get(p).map(|t| t.cycles).unwrap_or(0.0)
}

/// A vectorizable kernel template over a given element kind.
fn saxpy(kind: u8) -> String {
    format!(
        r#"
module m
contains
  subroutine kern(x, y, n)
    real(kind={kind}), intent(in) :: x(n)
    real(kind={kind}), intent(inout) :: y(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      y(i) = y(i) * 0.99 + x(i) * 0.5
    end do
  end subroutine kern
end module m
program t
  use m
  real(kind={kind}) :: x(4096), y(4096)
  x = 1.0
  y = 2.0
  call kern(x, y, 4096)
end program t
"#
    )
}

#[test]
fn vectorized_f32_is_about_twice_f64() {
    let t64 = proc_cycles(&run(&saxpy(8)), "kern");
    let t32 = proc_cycles(&run(&saxpy(4)), "kern");
    let ratio = t64 / t32;
    assert!(
        (1.7..2.3).contains(&ratio),
        "f64/f32 vector ratio {ratio} (the AVX story behind every MPAS speedup)"
    );
}

/// Scalar-operand conversions cost but do NOT devectorize (conversion
/// instructions vectorize): a loop promoting 32-bit inputs into a 64-bit
/// result stream stays vectorized-scale, just a bit pricier than
/// uniform-64. Only converting *stores* demote (next test).
#[test]
fn intra_loop_casts_cost_but_do_not_devectorize() {
    let mixed = r#"
module m
contains
  subroutine kern(x, y, n, c)
    real(kind=4), intent(in) :: x(n), c
    real(kind=8), intent(inout) :: y(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      y(i) = y(i) * 0.99 + x(i) * c
    end do
  end subroutine kern
end module m
program t
  use m
  real(kind=4) :: x(4096), c
  real(kind=8) :: y(4096)
  x = 1.0
  y = 2.0
  c = 0.5
  call kern(x, y, 4096, c)
end program t
"#;
    let t_mixed = proc_cycles(&run(mixed), "kern");
    let t64 = proc_cycles(&run(&saxpy(8)), "kern");
    assert!(
        t_mixed > t64,
        "mixed {t_mixed} must cost more than uniform-64 {t64}"
    );
    assert!(
        t_mixed < 3.0 * t64,
        "mixed {t_mixed} must stay vectorized-scale (uniform-64 {t64}), not scalar"
    );
}

/// Converting *stores* (what wrapper copy loops do) demote the loop: a
/// convert-copy is far more expensive per element than a same-kind copy.
#[test]
fn converting_stores_devectorize() {
    let copy = |src_kind: u8, dst_kind: u8| {
        format!(
            r#"
module m
contains
  subroutine copyk(a, b, n)
    real(kind={src_kind}), intent(in) :: a(n)
    real(kind={dst_kind}), intent(out) :: b(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      b(i) = a(i)
    end do
  end subroutine copyk
end module m
program t
  use m
  real(kind={src_kind}) :: a(4096)
  real(kind={dst_kind}) :: b(4096)
  a = 1.0
  call copyk(a, b, 4096)
end program t
"#
        )
    };
    let same = proc_cycles(&run(&copy(8, 8)), "copyk");
    let conv = proc_cycles(&run(&copy(8, 4)), "copyk");
    assert!(
        conv > 2.5 * same,
        "converting copy {conv} vs same-kind copy {same}: wrapper traffic must be expensive"
    );
}

/// The `pjac` lesson: a loop-carried recurrence never vectorizes, so
/// lowering its precision buys almost nothing.
#[test]
fn recurrences_gain_little_from_f32() {
    let scan = |kind: u8| {
        format!(
            r#"
module m
contains
  subroutine kern(x, n)
    real(kind={kind}), intent(inout) :: x(n)
    integer, intent(in) :: n
    integer :: i
    do i = 2, n
      x(i) = x(i) * 0.5 + x(i-1) * 0.25
    end do
  end subroutine kern
end module m
program t
  use m
  real(kind={kind}) :: x(4096)
  x = 1.0
  call kern(x, 4096)
end program t
"#
        )
    };
    let t64 = proc_cycles(&run(&scan(8)), "kern");
    let t32 = proc_cycles(&run(&scan(4)), "kern");
    let ratio = t64 / t32;
    assert!(
        ratio < 1.35,
        "recurrence f64/f32 ratio {ratio}: scalar compute is precision-insensitive"
    );
}

/// The `peror` lesson: a collective's latency dwarfs any precision gain.
#[test]
fn allreduce_latency_is_precision_insensitive() {
    let dot = |kind: u8| {
        format!(
            r#"
module m
contains
  subroutine kern(x, n, out)
    real(kind={kind}), intent(in) :: x(n)
    integer, intent(in) :: n
    real(kind={kind}), intent(out) :: out
    real(kind={kind}) :: s
    integer :: i
    s = 0.0
    do i = 1, n
      s = s + x(i) * x(i)
    end do
    out = 0.0
    call mpi_allreduce_sum(s, out)
  end subroutine kern
end module m
program t
  use m
  real(kind={kind}) :: x(64), r
  x = 1.0
  call kern(x, 64, r)
end program t
"#
        )
    };
    let t64 = proc_cycles(&run(&dot(8)), "kern");
    let t32 = proc_cycles(&run(&dot(4)), "kern");
    let ratio = t64 / t32;
    assert!(
        ratio < 1.1,
        "allreduce-dominated kernel f64/f32 ratio {ratio}: vendor reductions don't vectorize"
    );
}

/// The `flux` lesson: a small pure function inlines into the loop (cheap);
/// the same function treated as a wrapper (non-inlinable) pays per-call
/// overhead and devectorizes the caller.
#[test]
fn inlining_loss_is_expensive() {
    let src = r#"
module m
contains
  function f(q) result(r)
    real(kind=8) :: q, r
    r = q * 0.5d0 + 1.0d0
  end function f
  subroutine kern(x, n)
    real(kind=8), intent(inout) :: x(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      x(i) = f(x(i))
    end do
  end subroutine kern
end module m
program t
  use m
  real(kind=8) :: x(2048)
  x = 1.0d0
  call kern(x, 2048)
end program t
"#;
    let p = parse_program(src).unwrap();
    let ix = analyze(&p).unwrap();
    let inlined = run_program(&p, &ix, &RunConfig::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.wrapper_names.insert("f".to_string()); // pretend f is a wrapper
    let wrapped = run_program(&p, &ix, &cfg).unwrap();
    let ratio = wrapped.total_cycles / inlined.total_cycles;
    assert!(
        ratio > 4.0,
        "wrapper-on-call slowdown {ratio}: Figure 6's flux collapse needs this to be large"
    );
}

/// Scalar f32 transcendentals/divisions are cheaper than f64 even without
/// SIMD — funarc's uniform-32 speedup.
#[test]
fn scalar_narrow_ops_are_cheaper() {
    let trig = |kind: u8| {
        format!(
            r#"
module m
contains
  subroutine kern(x, n)
    real(kind={kind}), intent(inout) :: x(n)
    integer, intent(in) :: n
    integer :: i
    do i = 2, n
      x(i) = sin(x(i)) / (1.0 + x(i-1) * x(i-1))
    end do
  end subroutine kern
end module m
program t
  use m
  real(kind={kind}) :: x(512)
  x = 0.5
  call kern(x, 512)
end program t
"#
        )
    };
    let t64 = proc_cycles(&run(&trig(8)), "kern");
    let t32 = proc_cycles(&run(&trig(4)), "kern");
    let ratio = t64 / t32;
    assert!(
        (1.2..1.9).contains(&ratio),
        "scalar transcendental kernel ratio {ratio} (funarc's speedup source)"
    );
}

/// GPTL semantics at the boundary: timer overhead and call counting are
/// visible per procedure.
#[test]
fn timers_count_calls_and_attribute_exclusively() {
    let out = run(r#"
module m
contains
  function g(v) result(r)
    real(kind=8) :: v, r
    r = v + 1.0d0
  end function g
  subroutine outer(x)
    real(kind=8) :: x
    real(kind=8) :: acc
    integer :: k
    acc = x
    do k = 1, 10
      acc = g(acc)
    end do
    x = acc
  end subroutine outer
end module m
program t
  use m
  real(kind=8) :: x
  x = 0.0d0
  call outer(x)
  call prose_record('x', x)
end program t
"#);
    assert_eq!(out.records.scalars["x"], vec![10.0]);
    assert_eq!(out.timers.get("g").unwrap().calls, 10);
    assert_eq!(out.timers.get("outer").unwrap().calls, 1);
    // g's work is attributed to g even when inlined.
    assert!(out.timers.get("g").unwrap().cycles > 0.0);
}
