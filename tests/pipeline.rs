//! Integration tests spanning the whole pipeline: front end → analyses →
//! transformation → interpretation → search, on real model sources.

use prose::core::tuner::{config_to_map, tune, PerfScope};
use prose::fortran::{analyze, parse_program, unparse, PrecisionMap};
use prose::models::{adcirc, funarc, mom6, mpas, ModelSize};
use prose::search::Status;

/// Every bundled model round-trips through unparse → parse → analyze.
#[test]
fn all_model_sources_round_trip() {
    for spec in prose::models::all_models(ModelSize::Small) {
        let p1 = parse_program(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let text = unparse(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("{} reparse: {e}", spec.name));
        assert_eq!(p1, p2, "{} round trip", spec.name);
        analyze(&p2).unwrap_or_else(|e| panic!("{} analyze: {e}", spec.name));
    }
}

/// Uniform-64 variants are exact no-ops: same records, same cycles.
#[test]
fn identity_variant_reproduces_baseline_bit_for_bit() {
    for spec in prose::models::all_models(ModelSize::Small) {
        let m = spec.load().unwrap();
        let base = prose::interp::run_program(&m.program, &m.index, &Default::default()).unwrap();
        let map = PrecisionMap::declared(&m.index);
        let v = prose::transform::make_variant(&m.program, &m.index, &map).unwrap();
        assert!(v.wrappers.is_empty());
        let again = prose::interp::run_program(&v.program, &v.index, &Default::default()).unwrap();
        assert_eq!(base.records.scalars, again.records.scalars, "{}", spec.name);
        assert_eq!(base.records.arrays, again.records.arrays, "{}", spec.name);
        assert_eq!(base.total_cycles, again.total_cycles, "{}", spec.name);
    }
}

/// Every generated variant of every model is valid source: it re-parses,
/// re-analyzes, and its flow graph has no mismatched edges.
#[test]
fn random_variants_always_transform_cleanly() {
    use prose::analysis::flow::FpFlowGraph;
    for spec in prose::models::all_models(ModelSize::Small) {
        let m = spec.load().unwrap();
        // Deterministic pseudo-random configs.
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..12 {
            let map = {
                let mut map = PrecisionMap::declared(&m.index);
                for a in &m.atoms {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 & 1 == 1 {
                        map.set(*a, prose::fortran::ast::FpPrecision::Single);
                    }
                }
                map
            };
            let v = prose::transform::make_variant(&m.program, &m.index, &map)
                .unwrap_or_else(|e| panic!("{}: transform failed: {e}", spec.name));
            let g = FpFlowGraph::build(&v.program, &v.index);
            assert!(
                g.invariant_holds(&v.index, &PrecisionMap::declared(&v.index)),
                "{}: flow invariant broken",
                spec.name
            );
        }
    }
}

/// The funarc brute force enumerates the full space and its optimum beats
/// uniform-32 on error while approaching its speedup (the Figure-2 story).
#[test]
fn funarc_brute_force_finds_the_frontier() {
    let m = funarc::funarc(ModelSize::Small).load().unwrap();
    let task = m.task(PerfScope::WholeModel, 7).unwrap();
    let out = prose::core::tuner::tune_brute_force(&task).unwrap();
    assert_eq!(out.variants.len(), 256);
    let uniform32 = out
        .variants
        .iter()
        .find(|v| v.config.iter().all(|b| *b))
        .unwrap();
    // The paper's Figure-3 variant: everything 32-bit except `s1`, the
    // arc-length accumulator — almost as fast as uniform-32 with less
    // error. (At the bench's n=1e6 scale the error gap is ~5x; at this
    // test's n=300 it is smaller but still strict.)
    let funarc_scope = m.index.scope_of_procedure("funarc").unwrap();
    let s1 = m.index.fp_var_id(funarc_scope, "s1").unwrap();
    let s1_pos = m.atoms.iter().position(|a| *a == s1).unwrap();
    let fig3 = out
        .variants
        .iter()
        .find(|v| {
            v.config
                .iter()
                .enumerate()
                .all(|(i, b)| *b == (i != s1_pos))
        })
        .expect("the keep-s1 variant was enumerated");
    assert!(
        fig3.outcome.error < uniform32.outcome.error,
        "keep-s1 error {} vs uniform-32 {}",
        fig3.outcome.error,
        uniform32.outcome.error
    );
    assert!(
        fig3.outcome.speedup > 1.1,
        "keep-s1 speedup {}",
        fig3.outcome.speedup
    );
    assert!(fig3.outcome.speedup > 0.85 * uniform32.outcome.speedup);
}

/// The MPAS-A headline: the hotspot search finds a 1-minimal variant close
/// to 2x that is more accurate than the uniform 32-bit configuration.
#[test]
fn mpas_search_reproduces_the_headline() {
    let m = mpas::mpas_a(ModelSize::Small).load().unwrap();
    let task = m.task(PerfScope::Hotspot, 11).unwrap();
    let out = tune(&task).unwrap();
    let s = out.search.status_summary();
    assert!(s.best_speedup > 1.7, "best speedup {}", s.best_speedup);
    assert!(out.search.one_minimal);
    // The final variant keeps only a handful of 64-bit variables.
    let high = out.search.final_config.iter().filter(|b| !**b).count();
    assert!(high <= 8, "{high} variables still 64-bit");
    // And it is more accurate than uniform 32-bit.
    let best = out.search.best.unwrap();
    let uniform = out
        .variants
        .iter()
        .find(|v| v.config.iter().all(|b| *b))
        .expect("uniform-32 was explored");
    assert!(best.outcome.error < uniform.outcome.error);
}

/// MPAS-A whole-model guidance inverts the outcome (Figure 7): the same
/// hotspot that tunes to ~2x cannot beat 1.1x when boundary casting counts.
#[test]
fn mpas_whole_model_search_shows_the_boundary_cost() {
    let m = mpas::mpas_a(ModelSize::Small).load().unwrap();
    let task = m.task(PerfScope::WholeModel, 11).unwrap();
    let out = tune(&task).unwrap();
    let s = out.search.status_summary();
    assert!(s.best_speedup < 1.1, "whole-model best {}", s.best_speedup);
    // Uniform-32 is a significant whole-model slowdown.
    let uniform = out
        .variants
        .iter()
        .find(|v| v.config.iter().all(|b| *b))
        .expect("uniform-32 explored");
    assert!(
        uniform.outcome.speedup < 0.75,
        "uniform-32 whole-model speedup {}",
        uniform.outcome.speedup
    );
}

/// MOM6's pathologies: a mixed-precision reconstruction aborts; the
/// uniformly-lowered adjusters run to itmax (10x+ slower per call).
#[test]
fn mom6_pathologies_reproduce() {
    let m = mom6::mom6(ModelSize::Small).load().unwrap();
    // Mixed hl/hr in the reconstruction: fatal consistency check.
    let recon = m.index.scope_of_procedure("ppm_reconstruction").unwrap();
    let mut map = PrecisionMap::declared(&m.index);
    map.set(
        m.index.fp_var_id(recon, "hl").unwrap(),
        prose::fortran::ast::FpPrecision::Single,
    );
    let v = prose::transform::make_variant(&m.program, &m.index, &map).unwrap();
    let cfg = prose::interp::RunConfig {
        wrapper_names: v.wrappers.iter().cloned().collect(),
        ..Default::default()
    };
    let err = prose::interp::run_program(&v.program, &v.index, &cfg).unwrap_err();
    assert!(matches!(
        err,
        prose::interp::RunError::Stop { .. } | prose::interp::RunError::NonFinite { .. }
    ));
}

/// ADCIRC: the solver hotspot yields only a small uniform-32 speedup
/// because its expensive procedures defeat vectorization (criterion 1).
#[test]
fn adcirc_speedup_is_minimal() {
    let m = adcirc::adcirc(ModelSize::Small).load().unwrap();
    let task = m.task(PerfScope::Hotspot, 5).unwrap();
    let eval = prose::core::DynamicEvaluator::new(&task).unwrap();
    let rec = eval.eval_one(&vec![true; m.atoms.len()]);
    assert!(matches!(rec.outcome.status, Status::Pass));
    assert!(
        rec.outcome.speedup < 1.6,
        "ADCIRC uniform-32 speedup {} should be modest",
        rec.outcome.speedup
    );
}

/// The search's chosen configuration can be materialized as Fortran text
/// and the text alone reproduces the measured behaviour (the artifact is
/// the source, not the in-memory AST).
#[test]
fn final_variant_text_is_self_contained() {
    let m = funarc::funarc(ModelSize::Small).load().unwrap();
    let task = m.task(PerfScope::WholeModel, 3).unwrap();
    let out = tune(&task).unwrap();
    let map = config_to_map(&m.index, &m.atoms, &out.search.final_config);
    let v = prose::transform::make_variant(&m.program, &m.index, &map).unwrap();
    // Parse the emitted text from scratch and run it.
    let reparsed = parse_program(&v.text).unwrap();
    let index = analyze(&reparsed).unwrap();
    let cfg = prose::interp::RunConfig {
        wrapper_names: v.wrappers.iter().cloned().collect(),
        ..Default::default()
    };
    let run = prose::interp::run_program(&reparsed, &index, &cfg).unwrap();
    assert!(run.records.scalars.contains_key("result"));
}
