//! Integration tests of `prose-served`'s robustness contract: the
//! kill-9-and-restart differential (byte-identical final configuration,
//! zero duplicate interpreter evaluations), idempotent concurrent
//! submission, bounded-queue backpressure, the cached-result read path,
//! and SSE replay of a finished job's journal.
//!
//! Every test runs the daemon as a real subprocess (own signal latch, own
//! address) against its own temp jobs directory, and talks to it over raw
//! HTTP/1.1 on `std::net::TcpStream` — the same surface clients use.

use prose::core::job::JobSpec;
use prose::core::{run_job, JobRequest};
use prose::trace::{Journal, TrialRecord};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The job-runner test model: hotspot work plus driver-side load so the
/// hotspot share stays realistic (same shape as the in-crate job tests).
/// `steps` scales interpreter wall time per trial — kill-mid-run tests
/// need trials slow enough for a signal to land between journal appends.
fn program(steps: usize) -> String {
    format!(
        r#"
module hot
contains
  subroutine work(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    real(kind=8) :: c
    real(kind=8) :: d
    integer :: i
    c = 1.0000001d0
    d = 0.25d0
    do i = 1, n
      u(i) = u(i) * c + d
    end do
  end subroutine work
end module hot
program main
  use hot
  real(kind=8) :: field(256), diag(2048), acc
  integer :: step, i
  field = 1.0d0
  diag = 0.5d0
  acc = 0.0d0
  do step = 1, {steps}
    call work(field, 256)
    do i = 1, 2048
      diag(i) = diag(i) * 0.999d0 + 0.001d0
    end do
    acc = acc + sum(diag)
  end do
  call prose_record_array('field', field)
end program main
"#
    )
}

fn spec(threshold: f64, seed: u64) -> JobSpec {
    JobSpec {
        procs: vec!["work".into()],
        metric: "maxspace:field:0.0".into(),
        threshold,
        strategy: None,
        granularity: None,
        scope: None,
        seed: Some(seed),
        budget: None,
        exclude: vec![],
        workers: None,
        deadline_ms: None,
        retry_attempts: None,
        faults: None,
        n_runs: None,
        noise: None,
    }
}

/// A fast request: the all-lowered configuration passes the loose
/// threshold immediately, so the search journals one trial and finishes.
fn fast_request(seed: u64) -> String {
    serde_json::to_string(&JobRequest {
        program: program(20),
        spec: spec(1e-3, seed),
    })
    .unwrap()
}

/// A slow request: ~0.5 s of interpreter work per trial and a threshold
/// tight enough that delta debugging explores several configurations.
fn slow_request(seed: u64) -> (JobRequest, String) {
    let request = JobRequest {
        program: program(100),
        spec: spec(1e-9, seed),
    };
    let body = serde_json::to_string(&request).unwrap();
    (request, body)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prose-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the daemon on an ephemeral port and wait for it to publish its
/// bound address. Stale address files from a previous (killed) process
/// are removed first so we never connect to a dead socket.
#[allow(clippy::zombie_processes)] // every caller kills or waits the daemon
fn spawn_daemon(jobs_dir: &Path, extra: &[&str]) -> (Child, String) {
    let addr_path = jobs_dir.join("served.addr");
    let _ = std::fs::remove_file(&addr_path);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prose-served"));
    cmd.arg("--port")
        .arg("0")
        .arg("--jobs-dir")
        .arg(jobs_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for a in extra {
        cmd.arg(a);
    }
    let child = cmd.spawn().expect("spawn prose-served");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_path) {
            if !addr.trim().is_empty() {
                return (child, addr.trim().to_string());
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published served.addr"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One HTTP/1.1 exchange (`Connection: close`): returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

/// Pull a `"key":"value"` string field out of a JSON body.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn poll_until<T>(deadline_secs: u64, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Every uncached (interpreter-run) record must be unique by
/// (config, member, attempt): the zero-duplicate-evaluation invariant.
fn assert_no_duplicate_evaluations(records: &[TrialRecord]) {
    let mut seen: HashSet<(Vec<bool>, Option<u32>, u32)> = HashSet::new();
    for r in records.iter().filter(|r| !r.cached) {
        assert!(
            seen.insert((r.config.clone(), r.member, r.attempt)),
            "config {:?} (member {:?}, attempt {}) evaluated twice",
            r.config,
            r.member,
            r.attempt
        );
    }
}

#[test]
fn kill9_restart_differential_and_cached_resubmission() {
    let jobs_dir = tmp_dir("kill9");
    let (request, body) = slow_request(42);

    let (mut daemon, addr) = spawn_daemon(&jobs_dir, &[]);
    let (code, resp) = http(&addr, "POST", "/jobs", &body);
    assert_eq!(code, 201, "first submission creates: {resp}");
    let id = json_str_field(&resp, "id").expect("id in response");

    // Wait for the search to journal a couple of trials, then SIGKILL the
    // daemon mid-run — the worst-case crash.
    let journal_path = jobs_dir.join(&id).join("journal.jsonl");
    poll_until(120, "journal to accumulate trials", || {
        std::fs::read_to_string(&journal_path)
            .ok()
            .filter(|s| s.lines().count() >= 2)
    });
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    // Restart on the same jobs dir: recovery must re-queue and finish it.
    let (mut daemon, addr) = spawn_daemon(&jobs_dir, &[]);
    let final_status = poll_until(300, "restarted job to finish", || {
        let (code, resp) = http(&addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(code, 200, "{resp}");
        let state = json_str_field(&resp, "state").unwrap();
        assert!(
            state != "failed" && state != "cancelled",
            "job ended {state}: {resp}"
        );
        (state == "done").then_some(resp)
    });

    // Differential: the interrupted-and-resumed run must land on the same
    // final configuration as an uninterrupted run of the same request.
    let reference_dir = tmp_dir("kill9-ref");
    let reference = run_job(&request, &reference_dir.join("journal.jsonl"), None).unwrap();
    let result_text = std::fs::read_to_string(jobs_dir.join(&id).join("result.json")).unwrap();
    let served: prose::core::JobResult = serde_json::from_str(&result_text).unwrap();
    assert_eq!(served.final_config, reference.final_config);
    assert_eq!(served.final_double, reference.final_double);
    assert_eq!(served.job_id, id);

    // Journal-verified: the kill cost zero duplicate interpreter runs.
    let records = Journal::load_repair_or_empty(&journal_path)
        .unwrap()
        .records;
    assert_no_duplicate_evaluations(&records);
    // Every record the service wrote carries the job stamp.
    assert!(records
        .iter()
        .all(|r| r.job.as_deref() == Some(id.as_str())));

    // Idempotent resubmission of the finished job: 200 (not 201), served
    // from the persisted result without re-running anything.
    let before = records.iter().filter(|r| !r.cached).count();
    let (code, resp) = http(&addr, "POST", "/jobs", &body);
    assert_eq!(code, 200, "{resp}");
    assert!(resp.contains("\"created\":false"), "{resp}");
    assert!(resp.contains("\"state\":\"done\""), "{resp}");
    assert!(resp.contains("\"final_config\""), "result inlined: {resp}");
    let after = Journal::load_repair_or_empty(&journal_path)
        .unwrap()
        .records;
    assert_eq!(
        after.iter().filter(|r| !r.cached).count(),
        before,
        "resubmission must not evaluate"
    );

    // SSE on a finished job: full journal replay, then the terminal state.
    let (code, events) = http(&addr, "GET", &format!("/jobs/{id}/events"), "");
    assert_eq!(code, 200);
    let frames = events.matches("data: ").count();
    assert!(
        frames > after.len(),
        "journal lines + state event: {frames}"
    );
    assert!(events.contains("event: state"), "{events}");
    assert!(events.contains("\"state\":\"done\""), "{events}");
    let _ = final_status;

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    let _ = std::fs::remove_dir_all(&jobs_dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

#[test]
fn concurrent_identical_submissions_collapse_to_one_job() {
    let jobs_dir = tmp_dir("dup");
    let (mut daemon, addr) = spawn_daemon(&jobs_dir, &[]);
    let body = fast_request(7);

    let results: Vec<(u16, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let body = body.clone();
                s.spawn(move || http(&addr, "POST", "/jobs", &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let created = results.iter().filter(|(code, _)| *code == 201).count();
    let duplicate = results.iter().filter(|(code, _)| *code == 200).count();
    assert_eq!(created, 1, "exactly one submission creates: {results:?}");
    assert_eq!(duplicate, 7, "{results:?}");
    let ids: HashSet<String> = results
        .iter()
        .map(|(_, body)| json_str_field(body, "id").unwrap())
        .collect();
    assert_eq!(ids.len(), 1, "all submissions share the id: {ids:?}");
    let id = ids.into_iter().next().unwrap();

    // One job directory on disk (plus the address file).
    let dirs: Vec<String> = std::fs::read_dir(&jobs_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(dirs, vec![id.clone()]);

    // And the one job evaluates each configuration exactly once.
    poll_until(300, "job to finish", || {
        let (_, resp) = http(&addr, "GET", &format!("/jobs/{id}"), "");
        (json_str_field(&resp, "state").as_deref() == Some("done")).then_some(())
    });
    let records = Journal::load(jobs_dir.join(&id).join("journal.jsonl")).unwrap();
    assert_no_duplicate_evaluations(&records);

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    let _ = std::fs::remove_dir_all(&jobs_dir);
}

#[test]
fn bounded_queue_rejects_with_429_and_drains_cleanly_on_sigterm() {
    let jobs_dir = tmp_dir("backpressure");
    let (mut daemon, addr) = spawn_daemon(&jobs_dir, &["--queue-cap", "1", "--runners", "1"]);

    // Slow job A occupies the single runner...
    let (code, resp) = http(&addr, "POST", "/jobs", &slow_request(1).1);
    assert_eq!(code, 201, "{resp}");
    let id_a = json_str_field(&resp, "id").unwrap();
    poll_until(120, "job A to start running", || {
        let (_, resp) = http(&addr, "GET", &format!("/jobs/{id_a}"), "");
        (json_str_field(&resp, "state").as_deref() == Some("running")).then_some(())
    });

    // ...job B fills the queue...
    let (code, _) = http(&addr, "POST", "/jobs", &slow_request(2).1);
    assert_eq!(code, 201);

    // ...and job C bounces with 429 instead of being accepted-then-lost.
    let (code, resp) = http(&addr, "POST", "/jobs", &slow_request(3).1);
    assert_eq!(code, 429, "{resp}");
    assert!(resp.contains("queue full"), "{resp}");

    // Cancel the running job: acknowledged now, journaled by the runner at
    // the next evaluation boundary.
    let (code, resp) = http(&addr, "POST", &format!("/jobs/{id_a}/cancel"), "");
    assert_eq!(code, 202, "{resp}");
    poll_until(120, "job A to reach cancelled", || {
        let (_, resp) = http(&addr, "GET", &format!("/jobs/{id_a}"), "");
        (json_str_field(&resp, "state").as_deref() == Some("cancelled")).then_some(())
    });

    // SIGTERM: the daemon drains (checkpointing any straggler back to
    // `queued`) and exits 0 — never killed, never hung.
    let pid = daemon.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(status.success());
    let exit = poll_until(60, "daemon to drain and exit", || {
        daemon.try_wait().unwrap()
    });
    assert_eq!(exit.code(), Some(0), "clean drain exit: {exit:?}");

    let _ = std::fs::remove_dir_all(&jobs_dir);
}
