//! Differential tests for grouped-atom delta debugging: searching static
//! precision congruence classes first, then refining only the surviving
//! classes, must evaluate strictly fewer uncached trials than
//! variable-granular dd while landing on an equally good configuration.
//!
//! Both runs journal every trial, so the comparison is made on the
//! journals' `cached: false` records — the interpreter evaluations the
//! memo could not answer — and on the `search_granularity` stamp each
//! writer records.

use prose::core::tuner::{tune, PerfScope, SearchGranularity, TuningOutcome};
use prose::models::{funarc, mpas, ModelSize};
use prose::trace::{Journal, TrialRecord};
use std::path::PathBuf;

fn tmp_journal(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "prose-granularity-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

struct Run {
    outcome: TuningOutcome,
    records: Vec<TrialRecord>,
}

fn run(
    model: &prose::core::tuner::LoadedModel,
    scope: PerfScope,
    granularity: SearchGranularity,
    tag: &str,
) -> Run {
    let journal = tmp_journal(tag);
    let mut task = model.task(scope, 42).unwrap();
    task.granularity = granularity;
    task.journal = Some(journal.clone());
    let outcome = tune(&task).unwrap();
    let records = Journal::load(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    Run { outcome, records }
}

fn uncached(records: &[TrialRecord]) -> usize {
    records.iter().filter(|r| !r.cached).count()
}

fn best_speedup(o: &TuningOutcome) -> f64 {
    o.search
        .best
        .as_ref()
        .map(|b| b.outcome.speedup)
        .unwrap_or(f64::NAN)
}

/// Grouped vs variable dd on the funarc motivating example. At the spec's
/// 4e-4 threshold the all-lowered fast-path probe passes and both modes
/// stop after one trial, so the threshold is tightened until lowering
/// everything fails and dd has to isolate the sensitive accumulators —
/// which sit in a congruence class scattered across `funarc` and `fun`
/// (`t1 = fun(...)` chains `fun`'s result into the caller), exactly the
/// shape contiguous-partition dd splits badly.
#[test]
fn grouped_dd_prunes_funarc_with_an_equally_good_result() {
    let mut spec = funarc::funarc(ModelSize::Small);
    spec.error_threshold = 5.0e-8;
    let m = spec.load().unwrap();

    let var = run(
        &m,
        PerfScope::WholeModel,
        SearchGranularity::Variable,
        "fa-var",
    );
    let grp = run(
        &m,
        PerfScope::WholeModel,
        SearchGranularity::Grouped,
        "fa-grp",
    );

    assert!(
        uncached(&grp.records) < uncached(&var.records),
        "grouped dd must evaluate strictly fewer uncached trials \
         (grouped {}, variable {})",
        uncached(&grp.records),
        uncached(&var.records)
    );
    // Equally good: both verdicts agree and the grouped speedup is within
    // the search's own monotone-bar slack of the variable-granular one.
    assert_eq!(
        grp.outcome.search.best.is_some(),
        var.outcome.search.best.is_some()
    );
    assert!(
        best_speedup(&grp.outcome) >= 0.995 * best_speedup(&var.outcome),
        "grouped best {} vs variable best {}",
        best_speedup(&grp.outcome),
        best_speedup(&var.outcome)
    );

    // Every record is stamped with the granularity its writer ran at.
    assert!(var
        .records
        .iter()
        .all(|r| r.search_granularity == "variable"));
    assert!(grp
        .records
        .iter()
        .all(|r| r.search_granularity == "grouped"));
}

/// The same comparison on the MPAS-A dycore miniature at its shipped
/// hotspot configuration: ~47 atoms across five work procedures, where
/// argument-binding congruence classes cut across declaration order.
#[test]
fn grouped_dd_prunes_mpas_with_an_equally_good_result() {
    let m = mpas::mpas_a(ModelSize::Small).load().unwrap();

    let var = run(
        &m,
        PerfScope::Hotspot,
        SearchGranularity::Variable,
        "mp-var",
    );
    let grp = run(&m, PerfScope::Hotspot, SearchGranularity::Grouped, "mp-grp");

    assert!(
        uncached(&grp.records) < uncached(&var.records),
        "grouped dd must evaluate strictly fewer uncached trials \
         (grouped {}, variable {})",
        uncached(&grp.records),
        uncached(&var.records)
    );
    assert_eq!(
        grp.outcome.search.best.is_some(),
        var.outcome.search.best.is_some()
    );
    assert!(
        best_speedup(&grp.outcome) >= 0.995 * best_speedup(&var.outcome),
        "grouped best {} vs variable best {}",
        best_speedup(&grp.outcome),
        best_speedup(&var.outcome)
    );
    assert!(grp
        .records
        .iter()
        .all(|r| r.search_granularity == "grouped"));
}
