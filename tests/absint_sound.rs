//! Soundness property test for the abstract interpreter: on randomly
//! generated mini-programs under randomly drawn precision assignments, the
//! static per-variable guarantees must contain what an fp64-shadow
//! execution of the same program actually observes —
//!
//! * the observed worst relative error at any store never exceeds the
//!   static round-off bound, and
//! * every primary value stored stays inside the static value hull.
//!
//! Infinite static bounds are trivially sound (the analysis declined to
//! promise anything); a *finite* bound the dynamics escape is exactly the
//! soundness bug the config-certificate machinery exists to catch.

use prose::fortran::ast::FpPrecision;
use prose::fortran::PrecisionMap;
use prose::interp::{
    analyze_variant, run_program_shadow, CostParams, RunConfig, DEFAULT_MAX_STEPS,
};

/// splitmix64: deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// One random loop-body statement over the work routine's variables. The
/// shapes keep values finite-ish (mostly contractive, positive
/// coefficients) without being trivial: recurrences, accumulation,
/// intrinsics, division, and one mildly cancelling subtraction.
fn stmt(r: &mut Rng) -> String {
    let c1 = r.f64(0.9, 1.1);
    let c2 = r.f64(0.01, 0.5);
    match r.pick(8) {
        0 => format!("      t = t * {c1:.6}d0 + u * {c2:.6}d0"),
        1 => format!("      u = u + a * {c2:.6}d0"),
        2 => format!("      a = a * {c1:.6}d0 + t * {c2:.6}d0"),
        3 => format!("      b = b + sin(t) * {c2:.6}d0"),
        4 => format!("      t = sqrt(t * t + {c2:.6}d0)"),
        5 => format!("      u = u / (t * t + {c1:.6}d0)"),
        6 => format!("      b = b * {c1:.6}d0 - u * {c2:.6}d0"),
        _ => format!("      t = abs(u - a) + {c2:.6}d0"),
    }
}

/// A random two-scope mini-program: a work subroutine with a counted loop
/// of random statements, driven from a main program that records two
/// scalars.
fn program(r: &mut Rng) -> String {
    let body: Vec<String> = (0..3 + r.pick(4)).map(|_| stmt(r)).collect();
    let trips = 2 + r.pick(6);
    let outer = 2 + r.pick(4);
    format!(
        "module m
contains
  subroutine work(a, b, n)
    real(kind=8), intent(inout) :: a, b
    integer, intent(in) :: n
    real(kind=8) :: t, u
    integer :: i
    t = {t0:.6}d0
    u = {u0:.6}d0
    do i = 1, n
{body}
    end do
  end subroutine work
end module m
program main
  use m
  real(kind=8) :: x, y, acc
  integer :: j
  x = {x0:.6}d0
  y = {y0:.6}d0
  acc = 0.0d0
  do j = 1, {outer}
    call work(x, y, {trips})
    acc = acc + x * 0.25d0
  end do
  call prose_record('x', x)
  call prose_record('acc', acc)
end program main
",
        t0 = r.f64(0.5, 2.0),
        u0 = r.f64(0.5, 2.0),
        x0 = r.f64(0.5, 2.0),
        y0 = r.f64(0.5, 2.0),
        body = body.join("\n"),
    )
}

#[test]
fn static_bounds_contain_dynamic_shadow_observations() {
    let mut r = Rng(0x5eed_ab51);
    let mut checked_bounds = 0usize;
    for case in 0..40 {
        let src = program(&mut r);
        let prog = prose::fortran::parse_program(&src)
            .unwrap_or_else(|e| panic!("case {case}: parse: {e}\n{src}"));
        let index = prose::fortran::sema::analyze(&prog)
            .unwrap_or_else(|e| panic!("case {case}: sema: {e}\n{src}"));
        let atoms: Vec<_> = index
            .fp_variables()
            .filter(|v| !v.is_parameter)
            .map(|v| v.id)
            .collect();

        for draw in 0..3 {
            let mut map = PrecisionMap::declared(&index);
            for &a in &atoms {
                if r.flip() {
                    map.set(a, FpPrecision::Single);
                }
            }

            let inline = CostParams::default().inline_max_stmts;
            let rep = analyze_variant(&prog, &index, &map, inline, DEFAULT_MAX_STEPS)
                .unwrap_or_else(|e| panic!("case {case}.{draw}: analyze: {e}\n{src}"));

            // The dynamic run must execute the *same* precision
            // assignment the analysis judged: transform first, then run
            // the variant with the fp64 shadow on.
            let variant = prose::transform::make_variant(&prog, &index, &map)
                .unwrap_or_else(|e| panic!("case {case}.{draw}: transform: {e}\n{src}"));
            let cfg = RunConfig {
                shadow: true,
                wrapper_names: variant.wrappers.iter().cloned().collect(),
                ..RunConfig::default()
            };
            let (res, report) = run_program_shadow(&variant.program, &variant.index, &cfg);
            res.unwrap_or_else(|e| panic!("case {case}.{draw}: run: {e}\n{src}"));
            let report = report.expect("shadow report");

            for (observed, statics) in [(&report.vars, &rep.vars), (&report.records, &rep.records)]
            {
                for o in observed {
                    let Some(s) = statics.iter().find(|s| s.name == o.name) else {
                        continue;
                    };
                    checked_bounds += 1;
                    // Error soundness: an infinite static bound promises
                    // nothing; a finite one must dominate the observation
                    // (NaN observations count as escaping a finite bound).
                    assert!(
                        o.max_rel <= s.rel_err || !s.rel_err.is_finite(),
                        "case {case}.{draw}: {} observed rel {:e} escapes static bound {:e}\n{src}",
                        o.name,
                        o.max_rel,
                        s.rel_err
                    );
                    // Hull soundness: every stored primary value inside the
                    // static interval, each side trivially satisfied when
                    // the analysis widened it to infinity.
                    if let (Some(omin), Some(omax)) = (o.min_primary, o.max_primary) {
                        assert!(
                            omin >= s.lo || s.lo == f64::NEG_INFINITY,
                            "case {case}.{draw}: {} observed min {omin:e} below static lo {:e}\n{src}",
                            o.name,
                            s.lo
                        );
                        assert!(
                            omax <= s.hi || s.hi == f64::INFINITY,
                            "case {case}.{draw}: {} observed max {omax:e} above static hi {:e}\n{src}",
                            o.name,
                            s.hi
                        );
                    }
                }
            }
        }
    }
    assert!(
        checked_bounds > 100,
        "the generator must actually exercise the domain: {checked_bounds} bounds checked"
    );
}
