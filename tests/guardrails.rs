//! Integration tests for the numerical guardrails: shadow-precision
//! execution demoting metric-passing but numerically rotten variants, and
//! held-out ensemble validation demoting input-overfit configurations.

use prose::core::ensemble::{validate_ensemble, EnsembleParams};
use prose::core::tuner::{tune, PerfScope, TuningOutcome};
use prose::core::{DynamicEvaluator, FailureKind};
use prose::models::{guardrail, ModelSize};
use prose::search::{SearchResult, Status};
use prose::trace::Counters;

/// Atom indices by variable name for the guardrail model.
fn atom_index(m: &prose::core::tuner::LoadedModel, name: &str) -> usize {
    m.atoms
        .iter()
        .position(|a| m.index.fp_var(*a).name == name)
        .unwrap_or_else(|| panic!("no atom named {name}"))
}

fn config_for(m: &prose::core::tuner::LoadedModel, lowered: &[&str]) -> Vec<bool> {
    let mut cfg = vec![false; m.atoms.len()];
    for name in lowered {
        cfg[atom_index(m, name)] = true;
    }
    cfg
}

/// The planted cancellation: lowering `eps` makes `(1 + eps) - 1` collapse
/// to zero while the scalar metric barely moves. Without the shadow the
/// variant passes; with it, the guardrail demotes it with full provenance.
#[test]
fn cancellation_variant_passes_scalar_metric_but_shadow_demotes_it() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let cfg = config_for(&m, &["eps", "canc"]);

    let task = m.task(PerfScope::WholeModel, 1).unwrap();
    let eval = DynamicEvaluator::new(&task).unwrap();
    let blind = eval.eval_one(&cfg);
    assert_eq!(
        blind.outcome.status,
        Status::Pass,
        "scalar metric alone must accept the rotten variant (error {})",
        blind.outcome.error
    );
    assert!(blind.shadow.is_none());

    let mut shadow_task = m.task(PerfScope::WholeModel, 1).unwrap();
    shadow_task.shadow = true;
    let eval = DynamicEvaluator::new(&shadow_task).unwrap();
    let guarded = eval.eval_one(&cfg);
    assert_eq!(guarded.outcome.status, Status::FailAccuracy);
    assert_eq!(guarded.failure, Some(FailureKind::ShadowBudget));
    let sh = guarded.shadow.expect("shadow diagnostics must be recorded");
    assert!(sh.demoted);
    assert!(
        sh.cancellations > 0,
        "the (1+eps)-1 collapse must be flagged as catastrophic cancellation"
    );
    assert!(
        sh.cancellation_site.is_some(),
        "cancellation provenance must name the site"
    );
    assert!(
        sh.worst_rel > shadow_task.error_threshold,
        "shadow error {} must exceed the budget",
        sh.worst_rel
    );
    assert!(
        guarded
            .detail
            .as_deref()
            .unwrap_or("")
            .contains("shadow guardrail"),
        "detail: {:?}",
        guarded.detail
    );
    assert_eq!(eval.metrics().get("shadow_demotions"), 1);
}

/// The honest speedup path (`s`, `x` in the hot div/sqrt loop) survives the
/// shadow gate: real speedup, shadow error well inside the budget.
#[test]
fn honest_config_passes_shadow_gate_with_speedup() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let mut task = m.task(PerfScope::WholeModel, 1).unwrap();
    task.shadow = true;
    let eval = DynamicEvaluator::new(&task).unwrap();
    let rec = eval.eval_one(&config_for(&m, &["s", "x"]));
    assert_eq!(
        rec.outcome.status,
        Status::Pass,
        "error {}",
        rec.outcome.error
    );
    assert!(rec.outcome.speedup > 1.0, "speedup {}", rec.outcome.speedup);
    let sh = rec
        .shadow
        .expect("shadow diagnostics present on passes too");
    assert!(!sh.demoted);
    assert_eq!(sh.cancellations, 0);
    assert!(
        sh.worst_rel < task.error_threshold,
        "worst_rel {}",
        sh.worst_rel
    );
}

/// End-to-end delta debugging with the guardrail on: the search's final
/// configuration never lowers `eps`, and at least one shadow demotion was
/// recorded along the way.
#[test]
fn tuning_with_shadow_never_ships_the_cancellation_atom() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let mut task = m.task(PerfScope::WholeModel, 3).unwrap();
    task.shadow = true;
    let outcome = tune(&task).unwrap();
    let eps = atom_index(&m, "eps");
    assert!(
        !outcome.search.final_config[eps],
        "final config {:?} lowers eps",
        outcome.search.final_config
    );
    assert!(
        outcome.metrics.get("shadow_demotions") > 0,
        "the search must have hit the guardrail at least once"
    );
    // The demotions are journal-visible facts: every demoted record carries
    // the structured failure kind.
    let demoted: Vec<_> = outcome
        .variants
        .iter()
        .filter(|v| v.failure == Some(FailureKind::ShadowBudget))
        .collect();
    assert!(!demoted.is_empty());
    for v in demoted {
        assert_eq!(v.outcome.status, Status::FailAccuracy);
        assert!(v.shadow.as_ref().is_some_and(|s| s.demoted));
    }
}

/// The planted overfit: `q` is only exercised on perturbed inputs, so a
/// config lowering it passes tuning but fails held-out members; ensemble
/// validation demotes it and elects the runner-up without `q`.
#[test]
fn ensemble_validation_demotes_input_overfit_config() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let mut task = m.task(PerfScope::WholeModel, 5).unwrap();
    task.shadow = true;

    let overfit = config_for(&m, &["q", "s", "x"]);
    let honest = config_for(&m, &["s", "x"]);
    let recs =
        prose::core::tuner::evaluate_configs(&task, &[overfit.clone(), honest.clone()]).unwrap();
    for r in &recs {
        assert_eq!(
            r.outcome.status,
            Status::Pass,
            "both candidates pass on the tuning input (config {:?}, error {})",
            r.config,
            r.outcome.error
        );
    }

    // Package as a tuning outcome whose final (1-minimal) config is the
    // overfit one and whose trace offers the honest runner-up.
    let outcome = TuningOutcome {
        search: SearchResult {
            best: None,
            final_config: overfit.clone(),
            one_minimal: true,
            trace: vec![],
            budget_exhausted: false,
        },
        variants: recs,
        baseline_hotspot_cycles: 0.0,
        baseline_total_cycles: 0.0,
        hotspot_share: 1.0,
        metrics: Counters::new(),
    };

    let params = EnsembleParams {
        members: 3,
        ..EnsembleParams::default()
    };
    let report = validate_ensemble(&task, &outcome, &params).unwrap();

    assert_eq!(report.candidates[0].config, overfit);
    assert!(
        report.final_demoted(),
        "a member whose perturbation opens the gate must fail the overfit config: {:?}",
        report.candidates[0]
            .members
            .iter()
            .map(|mr| (mr.member, mr.record.outcome.status, mr.record.outcome.error))
            .collect::<Vec<_>>()
    );
    let winner = report.winning_config().expect("the honest config survives");
    assert_eq!(winner, &honest);
    for mr in &report.candidates[report.winner.unwrap()].members {
        assert_eq!(mr.record.outcome.status, Status::Pass);
    }
}
