//! Differential tests for the abstract-interpretation search pre-pass:
//! statically deciding atoms before delta debugging must prune real trials
//! without changing the quality of the final configuration.
//!
//! Both runs journal every trial, so "work" is compared on the journals'
//! `cached: false` records — the interpreter evaluations the memo could not
//! answer. The pre-pass additionally stamps every record it influenced with
//! the static-verdict summary, and the final configuration is bound to the
//! static analysis through a config certificate.

use prose::core::tuner::{tune, PerfScope, SearchGranularity, TuningOutcome};
use prose::core::{certify_config, crosscheck_journal, run_prepass, StaticVerdict};
use prose::models::{funarc, mpas, ModelSize};
use prose::trace::{Journal, TrialRecord};
use std::path::PathBuf;

fn tmp_journal(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("prose-absint-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

struct Run {
    outcome: TuningOutcome,
    records: Vec<TrialRecord>,
}

impl Run {
    /// Interpreter evaluations the memo could not answer.
    fn uncached(&self) -> usize {
        self.records.iter().filter(|r| !r.cached).count()
    }
}

fn run(model: &prose::core::tuner::LoadedModel, scope: PerfScope, absint: bool, tag: &str) -> Run {
    let journal = tmp_journal(tag);
    let mut task = model.task(scope, 7).unwrap();
    task.granularity = SearchGranularity::Grouped;
    task.absint = absint;
    task.journal = Some(journal.clone());
    let outcome = tune(&task).unwrap();
    let records = Journal::load(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    Run { outcome, records }
}

/// funarc at its paper threshold: every atom is statically certified safe
/// at f32, so the pre-pass demotes all eight, the search degenerates to
/// validating the forced configuration, and the outcome matches the plain
/// search exactly.
#[test]
fn funarc_prepass_decides_every_atom_without_changing_the_answer() {
    let model = funarc::funarc(ModelSize::Small).load().unwrap();

    let task = {
        let mut t = model.task(PerfScope::WholeModel, 7).unwrap();
        t.absint = true;
        t
    };
    let pre = run_prepass(&task);
    assert_eq!(pre.verdicts.len(), 8);
    assert_eq!(pre.count(StaticVerdict::PreDemote), 8);
    assert_eq!(pre.count(StaticVerdict::PinF64), 0);
    assert!(!pre.joint_fallback);
    assert!(pre.stamp.starts_with("demote="));
    assert!(pre.stamp.ends_with("|undecided=0"));

    let plain = run(&model, PerfScope::WholeModel, false, "funarc-plain");
    let pruned = run(&model, PerfScope::WholeModel, true, "funarc-absint");
    assert!(
        pruned.uncached() <= plain.uncached(),
        "pre-pass must not cost extra interpreter runs: {} vs {}",
        pruned.uncached(),
        plain.uncached()
    );
    assert_eq!(
        pruned.outcome.search.final_config, plain.outcome.search.final_config,
        "an all-atoms demotion must land on the plain search's configuration"
    );
}

/// mpas_a at its paper threshold: the declared-precision baseline already
/// has `⊤` bounds on the time-stepping state, so the excess-over-baseline
/// criterion certifies the constant/dummy atoms while the state variables
/// stay in the search. The grouped search over the residue must evaluate
/// strictly fewer uncached trials and land on an equally good
/// configuration.
#[test]
fn mpas_prepass_prunes_the_grouped_search() {
    let model = mpas::mpas_a(ModelSize::Small).load().unwrap();

    let task = {
        let mut t = model.task(PerfScope::Hotspot, 7).unwrap();
        t.absint = true;
        t
    };
    let pre = run_prepass(&task);
    assert!(
        pre.count(StaticVerdict::PreDemote) >= 1,
        "the pre-pass must decide at least one atom statically: {}",
        pre.stamp
    );

    let plain = run(&model, PerfScope::Hotspot, false, "mpas-plain");
    let pruned = run(&model, PerfScope::Hotspot, true, "mpas-absint");
    assert!(
        pruned.uncached() < plain.uncached(),
        "pre-pruned grouped dd must run strictly fewer uncached trials: {} vs {}",
        pruned.uncached(),
        plain.uncached()
    );

    let err = |r: &Run| r.outcome.search.best.as_ref().map(|b| b.outcome.error);
    assert_eq!(
        err(&pruned),
        err(&plain),
        "pruning must not change the best error"
    );
    let singles = |r: &Run| r.outcome.search.final_config.iter().filter(|b| **b).count();
    assert_eq!(
        singles(&pruned),
        singles(&plain),
        "pruning must lower exactly as many variables"
    );
}

/// Every evaluation request made under the pre-pass carries the compact
/// static-verdict stamp in its journal record; runs without the pre-pass
/// journal `None` (byte-compatible with pre-absint journals).
#[test]
fn every_trial_journals_the_static_verdict() {
    let model = funarc::funarc(ModelSize::Small).load().unwrap();
    let pruned = run(&model, PerfScope::WholeModel, true, "funarc-stamp");
    assert!(!pruned.records.is_empty());
    for r in &pruned.records {
        let stamp = r
            .static_verdict
            .as_deref()
            .expect("every absint trial must be stamped");
        assert!(stamp.starts_with("demote="), "stamp: {stamp}");
    }

    let plain = run(&model, PerfScope::WholeModel, false, "funarc-nostamp");
    assert!(plain.records.iter().all(|r| r.static_verdict.is_none()));
}

/// The config certificate for the pre-pruned search's final configuration:
/// every finite static bound must hold against the fp64-shadow run of the
/// same configuration (zero violations), and a journal cross-check of the
/// certificate finds no counter-evidence either.
#[test]
fn final_config_certificate_has_no_static_bound_violations() {
    let model = funarc::funarc(ModelSize::Small).load().unwrap();
    let mut task = model.task(PerfScope::WholeModel, 7).unwrap();
    task.granularity = SearchGranularity::Grouped;
    task.absint = true;
    let journal = tmp_journal("funarc-cert");
    task.journal = Some(journal.clone());
    let outcome = tune(&task).unwrap();
    assert!(outcome.search.best.is_some());

    let cert = certify_config(&task, "funarc", &outcome.search.final_config).unwrap();
    assert!(
        !cert.checks.is_empty(),
        "funarc must produce finite static bounds to check"
    );
    assert_eq!(
        cert.violations,
        0,
        "static-analysis soundness bug: {:?}",
        cert.checks
            .iter()
            .filter(|c| !c.sound)
            .map(|c| &c.name)
            .collect::<Vec<_>>()
    );

    let records = Journal::load(&journal).unwrap();
    let _ = std::fs::remove_file(&journal);
    let (_, _, violating) = crosscheck_journal(&cert, &records);
    assert!(
        violating.is_empty(),
        "journaled shadow evidence contradicts the certificate: {violating:?}"
    );
}
