//! Integration tests for the static-analysis layer against the bundled
//! mini-models: the numerical-hazard lints must flag the guardrail's two
//! planted traps at their exact `proc:line` sites, and the dependence
//! graph's congruence classes must match the models' copy-chain structure.

use prose::analysis::{run_lints, DepGraph, LintKind};
use prose::fortran::ast::FpPrecision;
use prose::fortran::PrecisionMap;
use prose::models::{funarc, guardrail, ModelSize};

/// The guardrail's planted traps, found statically. The dynamic shadow
/// machinery (PR-4) catches these at run time; the lint suite flags the
/// same sites without running anything, under the all-lowered candidate
/// map the tuner would probe first.
#[test]
fn lints_flag_both_planted_guardrail_traps() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let map = PrecisionMap::uniform(&m.index, &m.atoms, FpPrecision::Single);
    let lints = run_lints(&m.program, &m.index, &map);

    // Trap 1: `canc = (1.0d0 + eps) - 1.0d0` — catastrophic cancellation.
    assert!(
        lints
            .iter()
            .any(|l| l.kind == LintKind::CancellationCandidate && l.site == "kernel:41"),
        "cancellation trap not flagged at kernel:41: {lints:#?}"
    );
    // Trap 2: `q = q + 1.0d0` on top of a 2^24 seed — f32 absorption.
    assert!(
        lints.iter().any(|l| l.kind == LintKind::AbsorptionRisk
            && l.site == "kernel:46"
            && l.variable.as_deref() == Some("q")),
        "absorption trap not flagged at kernel:46: {lints:#?}"
    );
}

/// Lints are keyed by `proc:line`, the same site space the shadow
/// machinery's cancellation provenance uses, so reports can join them.
#[test]
fn lint_sites_use_proc_line_keys() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let map = PrecisionMap::uniform(&m.index, &m.atoms, FpPrecision::Single);
    for l in run_lints(&m.program, &m.index, &map) {
        assert_eq!(l.site, format!("{}:{}", l.proc, l.line));
        assert!(l.line > 0);
    }
}

/// funarc's congruence classes: `t1 = fun(i * h)` chains `fun`'s result
/// variable into the caller's `t1`, and `t2 = fun(...)` rides the same
/// class, so the scattered {funarc::t1, funarc::t2, fun::x, fun::t1}
/// quadruple must land in one class — the structure the grouped search
/// exploits on this model.
#[test]
fn funarc_congruence_classes_chain_across_the_call() {
    let m = funarc::funarc(ModelSize::Small).load().unwrap();
    let dep = DepGraph::build(&m.program, &m.index);
    let groups = dep.atom_groups(&m.atoms);
    assert_eq!(
        groups.iter().map(Vec::len).sum::<usize>(),
        m.atoms.len(),
        "groups partition the atoms"
    );
    let name = |i: usize| m.index.fp_var_path(m.atoms[i]);
    let quad = groups
        .iter()
        .find(|g| g.iter().any(|&i| name(i).ends_with("funarc::t1")))
        .expect("t1's class exists");
    let names: Vec<String> = quad.iter().map(|&i| name(i)).collect();
    for expect in ["funarc::t1", "funarc::t2", "fun::x", "fun::t1"] {
        assert!(
            names.iter().any(|n| n.ends_with(expect)),
            "{expect} missing from {names:?}"
        );
    }
}

/// The guardrail's copy chains: `canc` is computed from `eps` alone and
/// `acc` from `q` alone, so {eps, canc} and {q, acc} group while the
/// independent accumulators `s` and `x` stay singletons.
#[test]
fn guardrail_congruence_classes_match_the_copy_chains() {
    let m = guardrail::guardrail_smoke(ModelSize::Small).load().unwrap();
    let dep = DepGraph::build(&m.program, &m.index);
    let groups = dep.atom_groups(&m.atoms);
    let name = |i: usize| m.index.fp_var(m.atoms[i]).name.clone();
    let as_names: Vec<Vec<String>> = groups
        .iter()
        .map(|g| g.iter().map(|&i| name(i)).collect())
        .collect();
    let has = |members: &[&str]| {
        as_names
            .iter()
            .any(|g| g.len() == members.len() && members.iter().all(|m| g.iter().any(|n| n == m)))
    };
    assert!(has(&["eps", "canc"]), "groups: {as_names:?}");
    assert!(has(&["q", "acc"]), "groups: {as_names:?}");
    assert!(has(&["s"]), "groups: {as_names:?}");
    assert!(has(&["x"]), "groups: {as_names:?}");
}
