//! Graceful-shutdown integration test for `prose-tune`: SIGINT mid-search
//! flushes the WAL, appends a `shutdown` marker record, and exits 130;
//! `--resume` then finishes the search with zero quarantined records and
//! zero duplicate interpreter evaluations.

use prose::trace::Journal;
use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// 100 timesteps put ~0.5 s of interpreter work into each trial, and the
/// 1e-9 threshold forces delta debugging to explore several
/// configurations — plenty of window for the signal to land mid-search.
const PROGRAM: &str = r#"
module hot
contains
  subroutine work(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    real(kind=8) :: c
    real(kind=8) :: d
    integer :: i
    c = 1.0000001d0
    d = 0.25d0
    do i = 1, n
      u(i) = u(i) * c + d
    end do
  end subroutine work
end module hot
program main
  use hot
  real(kind=8) :: field(256), diag(2048), acc
  integer :: step, i
  field = 1.0d0
  diag = 0.5d0
  acc = 0.0d0
  do step = 1, 100
    call work(field, 256)
    do i = 1, 2048
      diag(i) = diag(i) * 0.999d0 + 0.001d0
    end do
    acc = acc + sum(diag)
  end do
  call prose_record_array('field', field)
end program main
"#;

fn tune_cmd(source: &PathBuf, journal: &PathBuf, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prose-tune"));
    cmd.arg(source)
        .args(["--procs", "work"])
        .args(["--metric", "maxspace:field:0.0"])
        .args(["--threshold", "1e-9"])
        .arg("--journal")
        .arg(journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for a in extra {
        cmd.arg(a);
    }
    cmd
}

#[test]
fn sigint_checkpoints_journal_and_resume_completes() {
    let dir = std::env::temp_dir().join(format!("prose-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("model.f90");
    let journal = dir.join("trials.jsonl");
    std::fs::write(&source, PROGRAM).unwrap();

    // Run until a couple of trials are journaled, then SIGINT.
    let mut child = tune_cmd(&source, &journal, &[]).spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if std::fs::read_to_string(&journal)
            .map(|s| s.lines().count() >= 2)
            .unwrap_or(false)
        {
            break;
        }
        assert!(
            child.try_wait().unwrap().is_none(),
            "search finished before the signal could land; slow the spec down"
        );
        assert!(
            Instant::now() < deadline,
            "journal never accumulated trials"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success());
    let exit = child.wait().unwrap();
    assert_eq!(exit.code(), Some(130), "SIGINT exit code: {exit:?}");

    // The WAL is intact (graceful unwind, no torn tail) and ends with the
    // shutdown marker.
    let records = Journal::load(&journal).unwrap();
    let last = records.last().expect("journal non-empty");
    assert_eq!(last.status, "shutdown");
    assert!(last.cached, "the marker is not an evaluation");
    assert!(last.config.is_empty(), "marker never matches a real config");
    assert_eq!(last.failure_kind.as_deref(), Some("signal:2"));
    let trials_before = records.len() - 1;
    assert!(trials_before >= 2);

    // --resume finishes the search: exit 0, zero quarantined records, and
    // no configuration evaluated twice across both processes.
    let exit = tune_cmd(&source, &journal, &["--resume"]).status().unwrap();
    assert_eq!(exit.code(), Some(0), "resume completes: {exit:?}");
    assert!(
        !prose::trace::quarantine_path_for(&journal).exists(),
        "graceful shutdown must not damage the journal"
    );
    let records = Journal::load(&journal).unwrap();
    let mut seen: HashSet<(Vec<bool>, Option<u32>, u32)> = HashSet::new();
    for r in records.iter().filter(|r| !r.cached) {
        assert!(
            seen.insert((r.config.clone(), r.member, r.attempt)),
            "config {:?} evaluated twice across interrupt + resume",
            r.config
        );
    }
    assert!(
        records.len() > trials_before + 1,
        "resume made progress past the checkpoint"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
