//! Property-based tests (proptest) on the pipeline's core invariants.

use proptest::prelude::*;
use prose::fortran::{analyze, parse_program, unparse, PrecisionMap};
use prose::models::{funarc, ModelSize};
use prose::search::dd::{DdParams, DeltaDebug};
use prose::search::{Config, Evaluator, Outcome, Status};

// ---- generators --------------------------------------------------------

/// Generate a small random-but-valid Fortran program: a module with a
/// procedure whose body is random arithmetic over a fixed variable set.
fn arb_program() -> impl Strategy<Value = String> {
    fn var() -> impl Strategy<Value = &'static str> {
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("x")]
    }
    let lit = prop_oneof![
        Just("1.0d0".to_string()),
        Just("0.5d0".to_string()),
        Just("2.0".to_string()),
        Just("3".to_string()),
    ];
    let operand = prop_oneof![var().prop_map(str::to_string), lit];
    let op = prop_oneof![Just("+"), Just("-"), Just("*")];
    let stmt = (var(), operand.clone(), op, operand)
        .prop_map(|(t, l, o, r)| format!("    {t} = {l} {o} {r}"));
    proptest::collection::vec(stmt, 1..12).prop_map(|stmts| {
        format!(
            "module m\ncontains\n  subroutine s(x)\n    real(kind=8) :: x\n    real(kind=8) :: a, b\n    real(kind=4) :: c\n    a = 0.0d0\n    b = 1.0d0\n    c = 2.0\n{}\n  end subroutine s\nend module m\nprogram main\n  use m\n  real(kind=8) :: x\n  x = 1.0d0\n  call s(x)\n  call prose_record('x', x)\nend program main\n",
            stmts.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(unparse(p)) == p for arbitrary generated programs.
    #[test]
    fn unparse_parse_round_trip(src in arb_program()) {
        let p1 = parse_program(&src).unwrap();
        let text = unparse(&p1);
        let p2 = parse_program(&text).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Transformation under any precision assignment yields a program that
    /// re-analyzes, and the flow-graph invariant holds.
    #[test]
    fn any_assignment_transforms_cleanly(src in arb_program(), bits in proptest::collection::vec(any::<bool>(), 8)) {
        let program = parse_program(&src).unwrap();
        let index = analyze(&program).unwrap();
        let atoms = index.atoms();
        let mut map = PrecisionMap::declared(&index);
        for (i, a) in atoms.iter().enumerate() {
            if *bits.get(i % bits.len()).unwrap_or(&false) {
                map.set(*a, prose::fortran::ast::FpPrecision::Single);
            }
        }
        let v = prose::transform::make_variant(&program, &index, &map).unwrap();
        let g = prose::analysis::flow::FpFlowGraph::build(&v.program, &v.index);
        prop_assert!(g.invariant_holds(&v.index, &PrecisionMap::declared(&v.index)));
    }

    /// Interpreting any generated program in uniform-64 equals interpreting
    /// its unparse-reparse twin exactly.
    #[test]
    fn interpretation_is_stable_under_round_trip(src in arb_program()) {
        let p1 = parse_program(&src).unwrap();
        let i1 = analyze(&p1).unwrap();
        let r1 = prose::interp::run_program(&p1, &i1, &Default::default()).unwrap();
        let p2 = parse_program(&unparse(&p1)).unwrap();
        let i2 = analyze(&p2).unwrap();
        let r2 = prose::interp::run_program(&p2, &i2, &Default::default()).unwrap();
        prop_assert_eq!(r1.records.scalars, r2.records.scalars);
        prop_assert_eq!(r1.total_cycles, r2.total_cycles);
    }
}

// ---- delta-debugging 1-minimality over random critical sets -------------

struct SyntheticEval {
    n: usize,
    critical: Vec<usize>,
}

impl Evaluator for SyntheticEval {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let bad = self.critical.iter().any(|c| lowered[*c]);
        let k = lowered.iter().filter(|b| **b).count();
        Outcome {
            status: if bad {
                Status::FailAccuracy
            } else {
                Status::Pass
            },
            speedup: 1.0 + k as f64 / self.n as f64,
            error: if bad { 1.0 } else { 1e-9 },
        }
    }

    fn atom_count(&self) -> usize {
        self.n
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any random critical set, delta debugging terminates on exactly
    /// that set and the result is 1-minimal (verified by single flips).
    #[test]
    fn dd_recovers_arbitrary_critical_sets(
        n in 4usize..48,
        seed in proptest::collection::vec(any::<u32>(), 1..5),
    ) {
        let critical: Vec<usize> = {
            let mut c: Vec<usize> = seed.iter().map(|s| (*s as usize) % n).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        let mut ev = SyntheticEval { n, critical: critical.clone() };
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        prop_assert!(r.one_minimal);
        let mut high: Vec<usize> = r
            .final_config
            .iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| i)
            .collect();
        high.sort_unstable();
        prop_assert_eq!(&high, &critical);
        // 1-minimality by exhaustive single flips.
        for h in &high {
            let mut cfg = r.final_config.clone();
            cfg[*h] = true;
            let o = ev.evaluate(&cfg);
            prop_assert!(!o.accepted(1.0));
        }
    }

    /// Eq. 1's median-based speedup is invariant to minority outliers.
    #[test]
    fn median_speedup_tolerates_outliers(
        base in 1.0f64..1e6,
        outliers in proptest::collection::vec(1.0f64..1e9, 0..3),
    ) {
        let mut samples = vec![base; 7];
        for (i, o) in outliers.iter().enumerate() {
            samples[i * 2] = *o; // replace up to 3 of 7
        }
        let s = prose::core::speedup::speedup(&[base; 7], &samples);
        if outliers.len() <= 3 {
            // Median of 7 with <=3 outliers is still `base`.
            prop_assert!((s - 1.0).abs() < 1e-9, "{s}");
        }
    }
}

/// Precision maps: fingerprints agree iff restrictions agree (smoke-level
/// property over funarc's 8 atoms — small enough to enumerate).
#[test]
fn fingerprint_is_injective_on_funarc_restrictions() {
    let m = funarc::funarc(ModelSize::Small).load().unwrap();
    let atoms = &m.atoms;
    let mut seen = std::collections::HashMap::new();
    for bits in 0u32..256 {
        let mut map = PrecisionMap::declared(&m.index);
        for (i, a) in atoms.iter().enumerate() {
            if bits >> i & 1 == 1 {
                map.set(*a, prose::fortran::ast::FpPrecision::Single);
            }
        }
        let fp = map.fingerprint(atoms);
        if let Some(prev) = seen.insert(fp, bits) {
            panic!("fingerprint collision between {prev:08b} and {bits:08b}");
        }
    }
}
